// Package uda implements the uncertain discrete attribute (UDA) data model
// from "Indexing Uncertain Categorical Data" (Singh et al., ICDE 2007).
//
// A UDA is a probability distribution over a categorical domain
// D = {d_1, ..., d_N}: each tuple's attribute value is not a single element
// of D but a vector (p_1, ..., p_N) with Σ p_i ≤ 1, where p_i is the
// probability that the attribute equals d_i. In practice the vector is
// sparse, so a UDA is stored as a sorted list of (item, probability) pairs
// with strictly positive probabilities.
//
// The package provides the equality-probability operator Pr(u = v) that
// underlies probabilistic equality threshold queries (PETQ), the L1, L2 and
// Kullback-Leibler distribution divergences used for clustering in the
// PDR-tree, and the ordered-domain extensions Pr(u > v) and window equality
// sketched at the end of the paper's §2.
package uda

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Epsilon is the tolerance used when validating that probability mass does
// not exceed one. It absorbs float rounding from normalization and repeated
// arithmetic.
const Epsilon = 1e-9

// Pair is one (domain item, probability) entry of a sparse UDA.
type Pair struct {
	Item uint32
	Prob float64
}

// UDA is an uncertain discrete attribute: a sparse probability distribution
// over a categorical domain whose items are identified by uint32 codes.
//
// Invariants (established by the constructors and preserved by all methods):
// pairs are sorted by strictly increasing Item, every Prob is in (0, 1], and
// the probabilities sum to at most 1+Epsilon. A total mass below 1 is legal
// and models missing values, as allowed by the paper.
//
// The zero value is the empty distribution (no mass anywhere).
type UDA struct {
	pairs []Pair
}

// New builds a UDA from the given pairs. The input may be unsorted and may
// contain duplicate items (their probabilities are summed). Pairs with zero
// probability are dropped. New returns an error if any probability is
// negative, not finite, or if the total mass exceeds 1+Epsilon.
func New(pairs ...Pair) (UDA, error) {
	ps := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		if math.IsNaN(p.Prob) || math.IsInf(p.Prob, 0) {
			return UDA{}, fmt.Errorf("uda: item %d has non-finite probability %v", p.Item, p.Prob)
		}
		if p.Prob < 0 {
			return UDA{}, fmt.Errorf("uda: item %d has negative probability %g", p.Item, p.Prob)
		}
		if p.Prob == 0 { //ucatlint:ignore floatcmp dropping exactly-zero input pairs is the constructor's contract
			continue
		}
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Item < ps[j].Item })
	// Merge duplicates in place.
	out := ps[:0]
	for _, p := range ps {
		if n := len(out); n > 0 && out[n-1].Item == p.Item {
			out[n-1].Prob += p.Prob
			continue
		}
		out = append(out, p)
	}
	u := UDA{pairs: out}
	if mass := u.Mass(); mass > 1+Epsilon {
		return UDA{}, fmt.Errorf("uda: total probability mass %g exceeds 1", mass)
	}
	return u, nil
}

// MustNew is New but panics on invalid input. It is intended for literals in
// tests and examples where the input is known to be valid.
func MustNew(pairs ...Pair) UDA {
	u, err := New(pairs...)
	if err != nil {
		panic(err)
	}
	return u
}

// FromMap builds a UDA from an item→probability map.
func FromMap(m map[uint32]float64) (UDA, error) {
	pairs := make([]Pair, 0, len(m))
	for item, prob := range m {
		pairs = append(pairs, Pair{Item: item, Prob: prob})
	}
	return New(pairs...)
}

// FromVector builds a UDA from a dense probability vector indexed by item.
func FromVector(probs []float64) (UDA, error) {
	pairs := make([]Pair, 0, len(probs))
	for i, p := range probs {
		if p != 0 { //ucatlint:ignore floatcmp exact zero marks a structurally absent item in the dense vector
			pairs = append(pairs, Pair{Item: uint32(i), Prob: p})
		}
	}
	return New(pairs...)
}

// Certain returns the UDA that places all probability mass on a single item,
// i.e. a conventional certain attribute value.
func Certain(item uint32) UDA {
	return UDA{pairs: []Pair{{Item: item, Prob: 1}}}
}

// ErrEmpty is returned by operations that require a non-empty distribution.
var ErrEmpty = errors.New("uda: empty distribution")

// Len returns the number of items with non-zero probability.
func (u UDA) Len() int { return len(u.pairs) }

// IsEmpty reports whether the distribution carries no mass.
func (u UDA) IsEmpty() bool { return len(u.pairs) == 0 }

// Pairs returns the (item, probability) entries in increasing item order.
// The returned slice is a copy and may be modified by the caller.
func (u UDA) Pairs() []Pair {
	out := make([]Pair, len(u.pairs))
	copy(out, u.pairs)
	return out
}

// Pair returns the i-th entry in increasing item order.
func (u UDA) Pair(i int) Pair { return u.pairs[i] }

// Prob returns Pr(u = item), which is zero for items not present.
func (u UDA) Prob(item uint32) float64 {
	i := sort.Search(len(u.pairs), func(i int) bool { return u.pairs[i].Item >= item })
	if i < len(u.pairs) && u.pairs[i].Item == item {
		return u.pairs[i].Prob
	}
	return 0
}

// Mass returns the total probability mass Σ p_i. It is 1 for complete
// distributions and may be smaller when values are missing.
func (u UDA) Mass() float64 {
	var s float64
	for _, p := range u.pairs {
		s += p.Prob
	}
	return s
}

// MaxItem returns the largest domain item with non-zero probability.
// It returns 0, false for the empty distribution.
func (u UDA) MaxItem() (uint32, bool) {
	if len(u.pairs) == 0 {
		return 0, false
	}
	return u.pairs[len(u.pairs)-1].Item, true
}

// Mode returns the most likely item and its probability. Ties are broken in
// favour of the smallest item. It returns an error for an empty distribution.
func (u UDA) Mode() (uint32, float64, error) {
	if len(u.pairs) == 0 {
		return 0, 0, ErrEmpty
	}
	best := u.pairs[0]
	for _, p := range u.pairs[1:] {
		if p.Prob > best.Prob {
			best = p
		}
	}
	return best.Item, best.Prob, nil
}

// Mix returns the mixture w·u + (1−w)·v, the standard way to fuse two
// pieces of uncertain evidence about the same attribute (e.g. two RFID
// readers reporting the same tag) with relative confidence w ∈ [0, 1].
func Mix(u, v UDA, w float64) (UDA, error) {
	if w < 0 || w > 1 {
		return UDA{}, fmt.Errorf("uda: mixture weight %g outside [0, 1]", w)
	}
	out := make([]Pair, 0, len(u.pairs)+len(v.pairs))
	merge(u, v, func(pu, pv float64) { out = append(out, Pair{Prob: w*pu + (1-w)*pv}) })
	// merge yields probabilities in item order; recover the items by a
	// second merged walk over the supports.
	items := mergedItems(u, v)
	for i := range out {
		out[i].Item = items[i]
	}
	return New(out...)
}

// mergedItems returns the sorted union of the two supports.
func mergedItems(u, v UDA) []uint32 {
	out := make([]uint32, 0, len(u.pairs)+len(v.pairs))
	i, j := 0, 0
	for i < len(u.pairs) || j < len(v.pairs) {
		switch {
		case j >= len(v.pairs) || (i < len(u.pairs) && u.pairs[i].Item < v.pairs[j].Item):
			out = append(out, u.pairs[i].Item)
			i++
		case i >= len(u.pairs) || u.pairs[i].Item > v.pairs[j].Item:
			out = append(out, v.pairs[j].Item)
			j++
		default:
			out = append(out, u.pairs[i].Item)
			i++
			j++
		}
	}
	return out
}

// Entropy returns the Shannon entropy −Σ p_i·log₂(p_i) of the distribution
// in bits, treating any missing mass as unobserved (not as an outcome). It
// quantifies how uncertain the attribute value is: 0 for a certain value,
// log₂(N) for a uniform distribution over N items. The evaluation datasets
// differ exactly on this axis (classifier outputs are low-entropy, fuzzy
// memberships high-entropy).
func (u UDA) Entropy() float64 {
	var h float64
	for _, p := range u.pairs {
		h -= p.Prob * math.Log2(p.Prob)
	}
	return h
}

// Normalize returns a copy of u rescaled so the total mass is exactly 1.
// It returns an error for an empty distribution.
func (u UDA) Normalize() (UDA, error) {
	if u.IsEmpty() {
		return UDA{}, ErrEmpty
	}
	mass := u.Mass()
	out := make([]Pair, len(u.pairs))
	for i, p := range u.pairs {
		out[i] = Pair{Item: p.Item, Prob: p.Prob / mass}
	}
	return UDA{pairs: out}, nil
}

// Top returns a copy of u restricted to the n most probable items
// (renormalization is the caller's choice). If n ≥ u.Len(), u is returned
// unchanged.
func (u UDA) Top(n int) UDA {
	if n >= len(u.pairs) {
		return u
	}
	if n <= 0 {
		return UDA{}
	}
	byProb := u.Pairs()
	sort.Slice(byProb, func(i, j int) bool {
		if byProb[i].Prob != byProb[j].Prob { //ucatlint:ignore floatcmp exact tie-break for a deterministic sort order
			return byProb[i].Prob > byProb[j].Prob
		}
		return byProb[i].Item < byProb[j].Item
	})
	byProb = byProb[:n]
	sort.Slice(byProb, func(i, j int) bool { return byProb[i].Item < byProb[j].Item })
	return UDA{pairs: byProb}
}

// PairsByProb returns the entries sorted by descending probability (ties by
// ascending item). This is the order in which the probabilistic inverted
// index stores its lists.
func (u UDA) PairsByProb() []Pair {
	out := u.Pairs()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob { //ucatlint:ignore floatcmp exact tie-break for a deterministic sort order
			return out[i].Prob > out[j].Prob
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Equal reports whether u and v are exactly the same distribution.
func (u UDA) Equal(v UDA) bool {
	if len(u.pairs) != len(v.pairs) {
		return false
	}
	for i := range u.pairs {
		if u.pairs[i] != v.pairs[i] {
			return false
		}
	}
	return true
}

// String renders the distribution as {(item, prob), ...} in item order,
// mirroring the notation used in the paper's Table 1.
func (u UDA) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range u.pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %.4g)", p.Item, p.Prob)
	}
	b.WriteByte('}')
	return b.String()
}

// Validate checks the representation invariants. It is used by tests and by
// code paths that deserialize UDAs from untrusted bytes.
func (u UDA) Validate() error {
	var mass float64
	for i, p := range u.pairs {
		if i > 0 && u.pairs[i-1].Item >= p.Item {
			return fmt.Errorf("uda: items not strictly increasing at index %d", i)
		}
		if math.IsNaN(p.Prob) || math.IsInf(p.Prob, 0) || p.Prob <= 0 || p.Prob > 1 {
			return fmt.Errorf("uda: item %d has out-of-range probability %v", p.Item, p.Prob)
		}
		mass += p.Prob
	}
	if mass > 1+Epsilon {
		return fmt.Errorf("uda: total probability mass %g exceeds 1", mass)
	}
	return nil
}

package uda

import "math/rand"

// Random draws a random UDA with at most maxPairs non-zero items from the
// domain [0, domain). The support is sampled without replacement and the
// probabilities are a normalized random point on the simplex, so the result
// always has total mass 1. It is used by property-based tests and by the
// workload generators.
func Random(r *rand.Rand, domain, maxPairs int) UDA {
	if domain <= 0 {
		return UDA{}
	}
	n := 1 + r.Intn(maxPairs)
	if n > domain {
		n = domain
	}
	items := sampleItems(r, domain, n)
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		w := r.Float64() + 1e-3 // bounded away from zero so no pair vanishes
		weights[i] = w
		sum += w
	}
	pairs := make([]Pair, n)
	for i, item := range items {
		pairs[i] = Pair{Item: item, Prob: weights[i] / sum}
	}
	return MustNew(pairs...)
}

// sampleItems draws n distinct items uniformly from [0, domain). For small n
// relative to the domain it uses rejection sampling against a set; otherwise
// it shuffles a prefix of the full domain.
func sampleItems(r *rand.Rand, domain, n int) []uint32 {
	if n*4 < domain {
		seen := make(map[uint32]struct{}, n)
		out := make([]uint32, 0, n)
		for len(out) < n {
			it := uint32(r.Intn(domain))
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			out = append(out, it)
		}
		return out
	}
	all := make([]uint32, domain)
	for i := range all {
		all[i] = uint32(i)
	}
	r.Shuffle(domain, func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:n]
}

package uda

import (
	"math"
	"math/rand"
	"testing"
)

func TestSmearZeroWindowIsIdentity(t *testing.T) {
	u := MustNew(Pair{1, 0.4}, Pair{5, 0.6})
	s := Smear(u, 0)
	if len(s) != 2 || s.Prob(1) != 0.4 || s.Prob(5) != 0.6 {
		t.Errorf("Smear(u, 0) = %v", s)
	}
}

func TestSmearBasic(t *testing.T) {
	u := MustNew(Pair{5, 1})
	s := Smear(u, 2)
	// Items 3..7 each get weight 1.
	if len(s) != 5 {
		t.Fatalf("Smear = %v, want 5 entries", s)
	}
	for it := uint32(3); it <= 7; it++ {
		if s.Prob(it) != 1 {
			t.Errorf("Smear[%d] = %g, want 1", it, s.Prob(it))
		}
	}
}

func TestSmearOverlappingWindows(t *testing.T) {
	u := MustNew(Pair{2, 0.5}, Pair{4, 0.5})
	s := Smear(u, 1)
	// Item 3 is covered by both windows: weight 1.
	if got := s.Prob(3); got != 1 {
		t.Errorf("Smear[3] = %g, want 1", got)
	}
	if got := s.Prob(1); got != 0.5 {
		t.Errorf("Smear[1] = %g, want 0.5", got)
	}
	if got := s.Prob(6); got != 0 {
		t.Errorf("Smear[6] = %g, want 0", got)
	}
}

func TestSmearClampsAtDomainEdges(t *testing.T) {
	u := MustNew(Pair{1, 1})
	s := Smear(u, 3)
	// Window [max(0,1−3), 4] = [0, 4].
	if s.Prob(0) != 1 || s.Prob(4) != 1 || s.Prob(5) != 0 {
		t.Errorf("Smear near zero = %v", s)
	}
	top := ^uint32(0)
	u = MustNew(Pair{top - 1, 1})
	s = Smear(u, 4)
	if s.Prob(top) != 1 || s.Prob(top-5) != 1 {
		t.Errorf("Smear near max = %d entries", len(s))
	}
}

func TestSmearEmpty(t *testing.T) {
	var u UDA
	if got := Smear(u, 3); len(got) != 0 {
		t.Errorf("Smear(empty) = %v", got)
	}
}

func TestSmearDotEqualsWithinProb(t *testing.T) {
	// The identity the window-equality indexes rely on:
	// ⟨Smear(u, c), Vec(v)⟩ = Pr(|u − v| ≤ c).
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		u := Random(r, 30, 6)
		v := Random(r, 30, 6)
		for _, c := range []uint32{0, 1, 2, 5, 29} {
			dot := VecDot(Smear(u, c), Vec(v))
			want := WithinProb(u, v, c)
			if math.Abs(dot-want) > 1e-12 {
				t.Fatalf("trial %d c=%d: smear dot %g, WithinProb %g", trial, c, dot, want)
			}
		}
	}
}

func TestSmearOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		s := Smear(Random(r, 50, 8), uint32(r.Intn(6)))
		for i := 1; i < len(s); i++ {
			if s[i-1].Item >= s[i].Item {
				t.Fatalf("Smear output not strictly increasing: %v", s)
			}
		}
	}
}

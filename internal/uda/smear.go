package uda

// Smear returns the box-filtered weight vector w with
// w_i = Σ_{j : |i−j| ≤ c} u_j.
//
// It is the bridge between windowed equality and ordinary dot products: for
// any two distributions, Pr(|u − v| ≤ c) = Σ_j u_j Σ_{|i−j| ≤ c} v_i
// = ⟨Smear(u, c), v⟩. Both index structures therefore answer the paper's
// relaxed window-equality queries (§2, ordered domains) by running their
// usual threshold machinery against the smeared query: inverted lists are
// scanned with w as the per-list weight, and the PDR-tree prunes with
// ⟨boundary, Smear(q, c)⟩, which over-estimates the window probability of
// everything below the boundary exactly as in Lemma 2.
//
// The result is a Vector, not a distribution: its mass is up to (2c+1)
// times u's.
func Smear(u UDA, c uint32) Vector {
	if len(u.pairs) == 0 {
		return nil
	}
	if c == 0 {
		return Vec(u)
	}
	// Sweep the sorted pairs once, maintaining the window [i−c, i+c] of
	// source items covering each output item. Output items form runs around
	// each source item; to stay simple and exact, collect boundaries first.
	type edge struct {
		item  uint32
		delta float64
		open  int // +1 window opens, −1 window closes
	}
	var edges []edge
	for _, p := range u.pairs {
		lo := uint32(0)
		if p.Item > c {
			lo = p.Item - c
		}
		hi := p.Item + c
		if hi < p.Item { // overflow: clamp to the top of the domain
			hi = ^uint32(0)
		}
		edges = append(edges, edge{item: lo, delta: p.Prob, open: 1})
		if hi != ^uint32(0) {
			edges = append(edges, edge{item: hi + 1, delta: -p.Prob, open: -1})
		}
	}
	// Sort edges by item (insertion sort: |edges| = 2·len(pairs), small).
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j-1].item > edges[j].item; j-- {
			edges[j-1], edges[j] = edges[j], edges[j-1]
		}
	}
	// Walk the edges accumulating the running weight; emit a pair per item
	// in covered ranges. Coverage is decided by the integer open-window
	// count — the float weight can retain round-off residue after all
	// windows close, which must not be emitted (it would extend to the end
	// of the item space).
	var out Vector
	var weight float64
	open := 0
	for i := 0; i < len(edges); {
		item := edges[i].item
		for i < len(edges) && edges[i].item == item {
			weight += edges[i].delta
			open += edges[i].open
			i++
		}
		if open <= 0 || weight <= 0 {
			continue
		}
		end := ^uint32(0)
		lastRange := i >= len(edges)
		if !lastRange {
			end = edges[i].item
		}
		for it := item; it < end; it++ {
			out = append(out, Pair{Item: it, Prob: weight})
		}
		if lastRange {
			// Only a clamped-at-max window reaches here; include the top item.
			out = append(out, Pair{Item: end, Prob: weight})
		}
	}
	return out
}

package uda

import (
	"math"
	"testing"
)

func TestL1Distance(t *testing.T) {
	u := MustNew(Pair{1, 0.6}, Pair{2, 0.4})
	v := MustNew(Pair{1, 0.4}, Pair{2, 0.6})
	if got := L1Distance(u, v); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("L1 = %g, want 0.4", got)
	}
	if got := L1Distance(u, u); got != 0 {
		t.Errorf("L1(u,u) = %g, want 0", got)
	}
}

func TestL1DisjointSupports(t *testing.T) {
	u := MustNew(Pair{1, 1})
	v := MustNew(Pair{2, 1})
	if got := L1Distance(u, v); math.Abs(got-2) > 1e-12 {
		t.Errorf("L1 over disjoint complete distributions = %g, want 2", got)
	}
}

func TestL2Distance(t *testing.T) {
	u := MustNew(Pair{1, 0.6}, Pair{2, 0.4})
	v := MustNew(Pair{1, 0.4}, Pair{2, 0.6})
	want := math.Sqrt(0.04 + 0.04)
	if got := L2Distance(u, v); math.Abs(got-want) > 1e-12 {
		t.Errorf("L2 = %g, want %g", got, want)
	}
}

func TestKLDivergenceExact(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{2, 0.5})
	v := MustNew(Pair{1, 0.25}, Pair{2, 0.75})
	want := 0.5*math.Log(0.5/0.25) + 0.5*math.Log(0.5/0.75)
	if got := KLDivergence(u, v); math.Abs(got-want) > 1e-12 {
		t.Errorf("KL = %g, want %g", got, want)
	}
	if got := KLDivergence(u, u); math.Abs(got) > 1e-12 {
		t.Errorf("KL(u,u) = %g, want 0", got)
	}
}

func TestKLDivergenceInfiniteWhenSupportUncovered(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{2, 0.5})
	v := MustNew(Pair{1, 1})
	if got := KLDivergence(u, v); !math.IsInf(got, 1) {
		t.Errorf("KL with uncovered support = %g, want +Inf", got)
	}
	// Smoothed variant must stay finite.
	if got := KLSmoothed(u, v); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("KLSmoothed = %g, want finite", got)
	}
}

func TestKLSmoothedMatchesExactOnCoveredSupport(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{2, 0.5})
	v := MustNew(Pair{1, 0.25}, Pair{2, 0.75})
	if got, want := KLSmoothed(u, v), KLDivergence(u, v); math.Abs(got-want) > 1e-12 {
		t.Errorf("KLSmoothed = %g, want %g (exact)", got, want)
	}
}

func TestSymmetricKL(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{2, 0.5})
	v := MustNew(Pair{1, 0.25}, Pair{2, 0.75})
	if got, want := SymmetricKL(u, v), SymmetricKL(v, u); math.Abs(got-want) > 1e-12 {
		t.Errorf("SymmetricKL not symmetric: %g vs %g", got, want)
	}
}

func TestDivergenceDispatchAndString(t *testing.T) {
	u := MustNew(Pair{1, 0.6}, Pair{2, 0.4})
	v := MustNew(Pair{1, 0.4}, Pair{2, 0.6})
	if got := L1.Distance(u, v); got != L1Distance(u, v) {
		t.Errorf("L1 dispatch mismatch")
	}
	if got := L2.Distance(u, v); got != L2Distance(u, v) {
		t.Errorf("L2 dispatch mismatch")
	}
	if got := KL.Distance(u, v); got != KLSmoothed(u, v) {
		t.Errorf("KL dispatch mismatch")
	}
	for d, want := range map[Divergence]string{L1: "L1", L2: "L2", KL: "KL"} {
		if d.String() != want {
			t.Errorf("String() = %q, want %q", d.String(), want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("unknown divergence did not panic")
		}
	}()
	Divergence(42).Distance(u, v)
}

func TestPaperSimilarityVsEqualityDistinction(t *testing.T) {
	// §2: two identical flat distributions have distance 0 but a *lower*
	// equality probability than two different concentrated ones.
	flat := MustNew(Pair{0, 0.2}, Pair{1, 0.2}, Pair{2, 0.2}, Pair{3, 0.2}, Pair{4, 0.2})
	u := MustNew(Pair{0, 0.6}, Pair{1, 0.4})
	v := MustNew(Pair{0, 0.4}, Pair{1, 0.6})
	if L1Distance(flat, flat) != 0 {
		t.Fatalf("identical distributions should be at distance 0")
	}
	if L1Distance(u, v) == 0 {
		t.Fatalf("different distributions should have positive distance")
	}
	if EqualityProb(u, v) <= EqualityProb(flat, flat) {
		t.Errorf("expected Pr(u=v)=%g > Pr(flat=flat)=%g",
			EqualityProb(u, v), EqualityProb(flat, flat))
	}
}

package uda_test

import (
	"fmt"

	"ucat/internal/uda"
)

// The paper's §2 example: two very different concentrated distributions can
// be *more probably equal* than two identical flat ones.
func ExampleEqualityProb() {
	flat := uda.MustNew(
		uda.Pair{Item: 0, Prob: 0.2}, uda.Pair{Item: 1, Prob: 0.2},
		uda.Pair{Item: 2, Prob: 0.2}, uda.Pair{Item: 3, Prob: 0.2},
		uda.Pair{Item: 4, Prob: 0.2},
	)
	u := uda.MustNew(uda.Pair{Item: 0, Prob: 0.6}, uda.Pair{Item: 1, Prob: 0.4})
	v := uda.MustNew(uda.Pair{Item: 0, Prob: 0.4}, uda.Pair{Item: 1, Prob: 0.6})
	fmt.Printf("Pr(flat = flat) = %.2f\n", uda.EqualityProb(flat, flat))
	fmt.Printf("Pr(u = v)       = %.2f\n", uda.EqualityProb(u, v))
	fmt.Printf("L1(flat, flat)  = %.2f\n", uda.L1Distance(flat, flat))
	fmt.Printf("L1(u, v)        = %.2f\n", uda.L1Distance(u, v))
	// Output:
	// Pr(flat = flat) = 0.20
	// Pr(u = v)       = 0.48
	// L1(flat, flat)  = 0.00
	// L1(u, v)        = 0.40
}

func ExampleUDA_Mode() {
	// Table 1(a), Camry: {(Trans, 0.2), (Suspension, 0.8)}.
	const trans, suspension = 2, 3
	camry := uda.MustNew(uda.Pair{Item: trans, Prob: 0.2}, uda.Pair{Item: suspension, Prob: 0.8})
	item, prob, _ := camry.Mode()
	fmt.Printf("most likely problem: item %d with probability %.1f\n", item, prob)
	// Output:
	// most likely problem: item 3 with probability 0.8
}

func ExampleGreaterProb() {
	// Ordered domain (e.g. severity levels 0..4): how likely is incident A
	// more severe than incident B?
	a := uda.MustNew(uda.Pair{Item: 1, Prob: 0.3}, uda.Pair{Item: 3, Prob: 0.7})
	b := uda.MustNew(uda.Pair{Item: 2, Prob: 1.0})
	fmt.Printf("Pr(A > B) = %.1f\n", uda.GreaterProb(a, b))
	fmt.Printf("Pr(A < B) = %.1f\n", uda.LessProb(a, b))
	// Output:
	// Pr(A > B) = 0.7
	// Pr(A < B) = 0.3
}

func ExampleWithinProb() {
	// Window equality: readings within one shelf position count as equal.
	a := uda.MustNew(uda.Pair{Item: 10, Prob: 0.5}, uda.Pair{Item: 12, Prob: 0.5})
	b := uda.MustNew(uda.Pair{Item: 11, Prob: 1.0})
	fmt.Printf("Pr(|A − B| ≤ 1) = %.1f\n", uda.WithinProb(a, b, 1))
	fmt.Printf("Pr(A = B)       = %.1f\n", uda.EqualityProb(a, b))
	// Output:
	// Pr(|A − B| ≤ 1) = 1.0
	// Pr(A = B)       = 0.0
}

func ExampleMix() {
	// Two RFID readers report the same tag with different confidence.
	readerA := uda.MustNew(uda.Pair{Item: 5, Prob: 0.8}, uda.Pair{Item: 6, Prob: 0.2})
	readerB := uda.MustNew(uda.Pair{Item: 6, Prob: 1.0})
	fused, _ := uda.Mix(readerA, readerB, 0.75) // trust A three times as much
	fmt.Println(fused)
	// Output:
	// {(5, 0.6), (6, 0.4)}
}

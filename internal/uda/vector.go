package uda

import (
	"fmt"
	"math"
	"sort"
)

// Vector is a sparse non-negative vector over the categorical domain, sorted
// by item. Unlike a UDA it carries no total-mass constraint: the PDR-tree's
// MBR boundary vectors are pointwise maxima of distributions and routinely
// sum past 1 ("Even though an MBR boundary is not a probability distribution
// in the strict sense, we can still apply most divergence measures", §3.2).
type Vector []Pair

// Vec returns u's pairs as a Vector (a copy).
func Vec(u UDA) Vector { return Vector(u.Pairs()) }

// Validate checks the representation invariants: strictly increasing items
// and probabilities in (0, 1].
func (v Vector) Validate() error {
	for i, p := range v {
		if i > 0 && v[i-1].Item >= p.Item {
			return fmt.Errorf("uda: vector items not strictly increasing at index %d", i)
		}
		if math.IsNaN(p.Prob) || p.Prob <= 0 || p.Prob > 1 {
			return fmt.Errorf("uda: vector item %d has out-of-range value %v", p.Item, p.Prob)
		}
	}
	return nil
}

// Prob returns the coordinate for item (zero when absent).
func (v Vector) Prob(item uint32) float64 {
	i := sort.Search(len(v), func(i int) bool { return v[i].Item >= item })
	if i < len(v) && v[i].Item == item {
		return v[i].Prob
	}
	return 0
}

// Area returns the L1 mass Σ v_i — the paper's simplest MBR "area" measure,
// which the insert heuristics minimize.
func (v Vector) Area() float64 {
	var s float64
	for _, p := range v {
		s += p.Prob
	}
	return s
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// MaxVec returns the pointwise maximum of a and b — how an MBR boundary
// grows to accommodate a new distribution or child boundary.
func MaxVec(a, b Vector) Vector {
	out := make(Vector, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Item < b[j].Item):
			out = append(out, a[i])
			i++
		case i >= len(a) || a[i].Item > b[j].Item:
			out = append(out, b[j])
			j++
		default:
			p := a[i]
			if b[j].Prob > p.Prob {
				p.Prob = b[j].Prob
			}
			out = append(out, p)
			i++
			j++
		}
	}
	return out
}

// Dominates reports whether v ≥ u pointwise, i.e. v is a valid over-estimate
// of the distribution u. Every UDA stored under an MBR is dominated by the
// MBR's boundary.
func (v Vector) Dominates(u UDA) bool {
	i := 0
	for _, p := range u.pairs {
		for i < len(v) && v[i].Item < p.Item {
			i++
		}
		if i >= len(v) || v[i].Item != p.Item || v[i].Prob < p.Prob {
			return false
		}
	}
	return true
}

// DotUDA returns Σ_i q_i · v_i. When v is an MBR boundary this dominates
// Pr(q = u) for every u under the MBR (Lemma 2), making ⟨v, q⟩ ≤ τ a sound
// pruning test.
func (v Vector) DotUDA(q UDA) float64 { return Dot(q, []Pair(v)) }

// VecDot returns Σ_i a_i · b_i between two sparse vectors.
func VecDot(a, b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Item < b[j].Item:
			i++
		case a[i].Item > b[j].Item:
			j++
		default:
			s += a[i].Prob * b[j].Prob
			i++
			j++
		}
	}
	return s
}

// mergeVec walks the union of two sparse supports.
func mergeVec(a, b Vector, f func(pa, pb float64)) {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Item < b[j].Item):
			f(a[i].Prob, 0)
			i++
		case i >= len(a) || a[i].Item > b[j].Item:
			f(0, b[j].Prob)
			j++
		default:
			f(a[i].Prob, b[j].Prob)
			i++
			j++
		}
	}
}

// VecL1 is the Manhattan distance between two vectors.
func VecL1(a, b Vector) float64 {
	var s float64
	mergeVec(a, b, func(pa, pb float64) { s += math.Abs(pa - pb) })
	return s
}

// VecL2 is the Euclidean distance between two vectors.
func VecL2(a, b Vector) float64 {
	var s float64
	mergeVec(a, b, func(pa, pb float64) { d := pa - pb; s += d * d })
	return math.Sqrt(s)
}

// VecKL is the smoothed KL divergence extended to vectors. Neither operand
// need be a distribution — MBR boundaries carry mass well past 1 — so both
// sides are normalized first: KL "tends to compare the probability values by
// their ratios" (§2), and ratios are only meaningful between shapes. Without
// normalization every comparison against a wide boundary collapses towards a
// constant and the measure stops discriminating.
func VecKL(a, b Vector) float64 {
	na, nb := a.Area(), b.Area()
	//ucatlint:ignore floatcmp exact zero area marks a structurally empty vector
	if na == 0 || nb == 0 {
		if na == nb { //ucatlint:ignore floatcmp both areas are exactly zero here, so equality means both empty
			return 0
		}
		return math.Log(1 / klFloor) // maximal penalty for an empty side
	}
	var s float64
	mergeVec(a, b, func(pa, pb float64) {
		pa /= na
		pb /= nb
		if pa == 0 { //ucatlint:ignore floatcmp exact zero marks a structurally absent item, not a computed value
			return
		}
		if pb < klFloor {
			pb = klFloor
		}
		s += pa * math.Log(pa/pb)
	})
	return s
}

// VecDistance evaluates the divergence between two vectors.
func (d Divergence) VecDistance(a, b Vector) float64 {
	switch d {
	case L1:
		return VecL1(a, b)
	case L2:
		return VecL2(a, b)
	case KL:
		return VecKL(a, b)
	default:
		panic("uda: unknown divergence " + d.String())
	}
}

package uda

import (
	"fmt"
	"math"
)

// Divergence identifies one of the paper's three distribution distance
// functions (§2). L1 and L2 are metrics; KL is not, so it cannot prune search
// paths directly but can cluster distributions in an index — the paper's
// experiments (Figure 4) show KL-based clustering gives the best PDR-tree
// performance.
type Divergence int

const (
	// L1 is the Manhattan distance Σ |u_i − v_i|.
	L1 Divergence = iota
	// L2 is the Euclidean distance sqrt(Σ (u_i − v_i)²).
	L2
	// KL is the Kullback-Leibler divergence Σ u_i log(u_i / v_i).
	KL
)

// String returns the paper's name for the divergence.
func (d Divergence) String() string {
	switch d {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case KL:
		return "KL"
	default:
		return fmt.Sprintf("Divergence(%d)", int(d))
	}
}

// Distance evaluates the divergence between two distributions. For KL the
// smoothed variant is used so that the result stays finite on sparse data;
// see KLDivergence for the exact definition.
func (d Divergence) Distance(u, v UDA) float64 {
	switch d {
	case L1:
		return L1Distance(u, v)
	case L2:
		return L2Distance(u, v)
	case KL:
		return KLSmoothed(u, v)
	default:
		panic("uda: unknown divergence " + d.String())
	}
}

// merge walks the union of the two sparse supports, invoking f with the
// aligned probabilities (zero where an item is absent).
func merge(u, v UDA, f func(pu, pv float64)) {
	i, j := 0, 0
	for i < len(u.pairs) || j < len(v.pairs) {
		switch {
		case j >= len(v.pairs) || (i < len(u.pairs) && u.pairs[i].Item < v.pairs[j].Item):
			f(u.pairs[i].Prob, 0)
			i++
		case i >= len(u.pairs) || u.pairs[i].Item > v.pairs[j].Item:
			f(0, v.pairs[j].Prob)
			j++
		default:
			f(u.pairs[i].Prob, v.pairs[j].Prob)
			i++
			j++
		}
	}
}

// L1Distance returns the Manhattan distance Σ_i |u_i − v_i|.
func L1Distance(u, v UDA) float64 {
	var s float64
	merge(u, v, func(pu, pv float64) { s += math.Abs(pu - pv) })
	return s
}

// L2Distance returns the Euclidean distance sqrt(Σ_i (u_i − v_i)²).
func L2Distance(u, v UDA) float64 {
	var s float64
	merge(u, v, func(pu, pv float64) { d := pu - pv; s += d * d })
	return math.Sqrt(s)
}

// KLDivergence returns the exact Kullback-Leibler divergence
// Σ_i u_i · log(u_i / v_i), with the convention 0·log(0/x) = 0. It is +Inf
// whenever u has mass on an item where v has none, which on sparse data is
// the common case; most callers want KLSmoothed instead.
func KLDivergence(u, v UDA) float64 {
	var s float64
	merge(u, v, func(pu, pv float64) {
		if pu == 0 { //ucatlint:ignore floatcmp exact zero marks a structurally absent item, not a computed value
			return
		}
		if pv == 0 { //ucatlint:ignore floatcmp exact zero marks a structurally absent item, not a computed value
			s = math.Inf(1)
			return
		}
		s += pu * math.Log(pu/pv)
	})
	return s
}

// klFloor is the probability floor substituted for zeros in KLSmoothed. The
// exact value is immaterial for clustering — it only needs to make "v lacks
// an item that u has" expensive but finite.
const klFloor = 1e-6

// KLSmoothed is the KL divergence with zero probabilities replaced by a small
// floor on the v side, so the result is always finite. The PDR-tree uses it
// to compare distributions (and MBR boundary vectors, which are not strictly
// distributions — the paper notes most divergence measures still apply).
func KLSmoothed(u, v UDA) float64 {
	var s float64
	merge(u, v, func(pu, pv float64) {
		if pu == 0 { //ucatlint:ignore floatcmp exact zero marks a structurally absent item, not a computed value
			return
		}
		if pv < klFloor {
			pv = klFloor
		}
		s += pu * math.Log(pu/pv)
	})
	return s
}

// SymmetricKL returns KLSmoothed(u,v) + KLSmoothed(v,u), a symmetric variant
// convenient for agglomerative clustering where the direction is arbitrary.
func SymmetricKL(u, v UDA) float64 {
	return KLSmoothed(u, v) + KLSmoothed(v, u)
}

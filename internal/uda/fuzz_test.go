package uda

import (
	"math/rand"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the page codec: it must either reject
// the input or produce a structurally valid UDA that re-encodes to the same
// decoded form — never panic or return garbage.
func FuzzDecode(f *testing.F) {
	// Seed with valid encodings and near-miss corruptions.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		u := Random(r, 100, 10)
		buf, err := AppendEncode(nil, u)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		if len(buf) > 3 {
			bad := append([]byte(nil), buf...)
			bad[3] ^= 0xFF
			f.Add(bad)
			f.Add(buf[:len(buf)-1])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		u, n, err := Decode(data)
		if err != nil {
			return
		}
		if n < 2 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		if verr := u.Validate(); verr != nil {
			t.Fatalf("Decode returned invalid UDA: %v", verr)
		}
		// Round trip: re-encoding the decoded value reproduces the consumed
		// prefix exactly (the codec is canonical).
		re, err := AppendEncode(nil, u)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if len(re) != n {
			t.Fatalf("re-encode size %d, consumed %d", len(re), n)
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}

package uda

// EqualityProb returns Pr(u = v) = Σ_i u.p_i · v.p_i, the probability that
// two independent uncertain attributes take the same value (Definition 2 of
// the paper). It is the predicate evaluated by probabilistic equality
// threshold queries and joins.
//
// Both operands are sparse and sorted by item, so the sum is a linear merge.
func EqualityProb(u, v UDA) float64 {
	var s float64
	i, j := 0, 0
	for i < len(u.pairs) && j < len(v.pairs) {
		a, b := u.pairs[i], v.pairs[j]
		switch {
		case a.Item < b.Item:
			i++
		case a.Item > b.Item:
			j++
		default:
			s += a.Prob * b.Prob
			i++
			j++
		}
	}
	return s
}

// EqualsItemProb returns Pr(u = item), the probability that the uncertain
// attribute equals a given certain value. It is EqualityProb(u, Certain(item))
// without the allocation.
func EqualsItemProb(u UDA, item uint32) float64 {
	return u.Prob(item)
}

// Dot returns the dot product Σ_i u_i · w_i between a UDA and a sparse
// weight vector given as sorted pairs. It is used for PDR-tree pruning where
// w is an MBR boundary vector (an over-estimate, not a distribution): if
// ⟨boundary, q⟩ ≤ τ then no UDA under the boundary can satisfy PETQ(q, τ).
func Dot(u UDA, w []Pair) float64 {
	var s float64
	i, j := 0, 0
	for i < len(u.pairs) && j < len(w) {
		a, b := u.pairs[i], w[j]
		switch {
		case a.Item < b.Item:
			i++
		case a.Item > b.Item:
			j++
		default:
			s += a.Prob * b.Prob
			i++
			j++
		}
	}
	return s
}

// MaxEqualityProb returns an upper bound on Pr(u = v) over all v: it is
// attained by a v that concentrates on u's mode. Useful for quickly deciding
// whether a threshold τ can be met by any tuple at all.
func MaxEqualityProb(u UDA) float64 {
	var best float64
	for _, p := range u.pairs {
		if p.Prob > best {
			best = p.Prob
		}
	}
	return best
}

// SelfEqualityProb returns Pr(u = u') where u' is an independent copy of u,
// i.e. Σ p_i². This is the "collision probability" of the distribution; the
// paper's §2 example shows it can be small even for identical distributions.
func SelfEqualityProb(u UDA) float64 {
	var s float64
	for _, p := range u.pairs {
		s += p.Prob * p.Prob
	}
	return s
}

package uda

import (
	"math"
	"testing"
)

func TestGreaterProbBasic(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{3, 0.5})
	v := MustNew(Pair{2, 1})
	// u > v only when u = 3: 0.5.
	if got := GreaterProb(u, v); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Pr(u>v) = %g, want 0.5", got)
	}
	if got := LessProb(u, v); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Pr(u<v) = %g, want 0.5", got)
	}
}

func TestGreaterLessEqualPartition(t *testing.T) {
	// For complete distributions, Pr(u>v) + Pr(u<v) + Pr(u=v) = 1.
	u := MustNew(Pair{1, 0.2}, Pair{2, 0.3}, Pair{5, 0.5})
	v := MustNew(Pair{2, 0.6}, Pair{4, 0.4})
	sum := GreaterProb(u, v) + LessProb(u, v) + EqualityProb(u, v)
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("partition sums to %g, want 1", sum)
	}
}

func TestGreaterProbCertain(t *testing.T) {
	if got := GreaterProb(Certain(5), Certain(3)); got != 1 {
		t.Errorf("Pr(5>3) = %g, want 1", got)
	}
	if got := GreaterProb(Certain(3), Certain(5)); got != 0 {
		t.Errorf("Pr(3>5) = %g, want 0", got)
	}
	if got := GreaterProb(Certain(3), Certain(3)); got != 0 {
		t.Errorf("Pr(3>3) = %g, want 0", got)
	}
}

func TestWithinProb(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{4, 0.5})
	v := MustNew(Pair{2, 0.5}, Pair{8, 0.5})
	// |u-v| <= 1: (1,2) and... (4,2)? diff 2 no. So 0.5*0.5 = 0.25.
	if got := WithinProb(u, v, 1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("WithinProb c=1 = %g, want 0.25", got)
	}
	// |u-v| <= 4: (1,2)=0.25, (4,2)=0.25, (4,8)=0.25 → 0.75.
	if got := WithinProb(u, v, 4); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("WithinProb c=4 = %g, want 0.75", got)
	}
	// c large enough covers everything.
	if got := WithinProb(u, v, 100); math.Abs(got-1) > 1e-12 {
		t.Errorf("WithinProb c=100 = %g, want 1", got)
	}
}

func TestWithinProbZeroIsEquality(t *testing.T) {
	u := MustNew(Pair{1, 0.6}, Pair{2, 0.4})
	v := MustNew(Pair{1, 0.4}, Pair{2, 0.6})
	if got, want := WithinProb(u, v, 0), EqualityProb(u, v); got != want {
		t.Errorf("WithinProb c=0 = %g, want EqualityProb %g", got, want)
	}
	if got, want := WindowEqualityProb(u, v, 2), WithinProb(u, v, 2); got != want {
		t.Errorf("WindowEqualityProb = %g, want %g", got, want)
	}
}

func TestWithinProbOverflowWindow(t *testing.T) {
	top := ^uint32(0)
	u := MustNew(Pair{top - 1, 1})
	v := MustNew(Pair{top, 1})
	if got := WithinProb(u, v, 5); got != 1 {
		t.Errorf("WithinProb near uint32 max = %g, want 1", got)
	}
}

func TestExpectedItemAndCDF(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{3, 0.5})
	e, err := ExpectedItem(u)
	if err != nil || math.Abs(e-2) > 1e-12 {
		t.Errorf("ExpectedItem = (%g, %v), want (2, nil)", e, err)
	}
	if got := CDF(u, 0); got != 0 {
		t.Errorf("CDF(0) = %g, want 0", got)
	}
	if got := CDF(u, 1); got != 0.5 {
		t.Errorf("CDF(1) = %g, want 0.5", got)
	}
	if got := CDF(u, 3); got != 1 {
		t.Errorf("CDF(3) = %g, want 1", got)
	}
	var empty UDA
	if _, err := ExpectedItem(empty); err != ErrEmpty {
		t.Errorf("ExpectedItem(empty) err = %v, want ErrEmpty", err)
	}
}

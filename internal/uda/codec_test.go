package uda

import (
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	u := MustNew(Pair{1, 0.25}, Pair{7, 0.5}, Pair{1000000, 0.25})
	buf, err := AppendEncode(nil, u)
	if err != nil {
		t.Fatalf("AppendEncode: %v", err)
	}
	if len(buf) != EncodedSize(u) {
		t.Errorf("encoded %d bytes, EncodedSize says %d", len(buf), EncodedSize(u))
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(buf) {
		t.Errorf("Decode consumed %d bytes, want %d", n, len(buf))
	}
	if got.Len() != u.Len() {
		t.Fatalf("decoded %d pairs, want %d", got.Len(), u.Len())
	}
	if !got.Equal(u) {
		t.Errorf("decoded %v, want exact round-trip of %v", got, u)
	}
}

func TestEncodeEmpty(t *testing.T) {
	var u UDA
	buf, err := AppendEncode(nil, u)
	if err != nil {
		t.Fatalf("AppendEncode: %v", err)
	}
	if len(buf) != 2 {
		t.Errorf("empty encoding is %d bytes, want 2", len(buf))
	}
	got, n, err := Decode(buf)
	if err != nil || n != 2 || !got.IsEmpty() {
		t.Errorf("Decode empty = (%v, %d, %v)", got, n, err)
	}
}

func TestDecodeMultipleConcatenated(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{2, 0.5})
	v := MustNew(Pair{9, 1})
	buf, err := AppendEncode(nil, u)
	if err != nil {
		t.Fatalf("AppendEncode u: %v", err)
	}
	buf, err = AppendEncode(buf, v)
	if err != nil {
		t.Fatalf("AppendEncode v: %v", err)
	}
	got1, n1, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode 1: %v", err)
	}
	got2, n2, err := Decode(buf[n1:])
	if err != nil {
		t.Fatalf("Decode 2: %v", err)
	}
	if n1+n2 != len(buf) {
		t.Errorf("consumed %d+%d bytes, want %d", n1, n2, len(buf))
	}
	if got1.Len() != 2 || got2.Len() != 1 || got2.Prob(9) != 1 {
		t.Errorf("decoded %v then %v", got1, got2)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Errorf("Decode(nil) succeeded, want error")
	}
	if _, _, err := Decode([]byte{1}); err == nil {
		t.Errorf("Decode of 1-byte buffer succeeded, want error")
	}
	// Count says 3 pairs but only one is present.
	u := MustNew(Pair{1, 1})
	buf, _ := AppendEncode(nil, u)
	buf[0] = 3
	if _, _, err := Decode(buf); err == nil {
		t.Errorf("Decode of truncated buffer succeeded, want error")
	}
}

func TestDecodeRejectsCorruptPayload(t *testing.T) {
	u := MustNew(Pair{5, 0.5}, Pair{6, 0.5})
	buf, _ := AppendEncode(nil, u)
	// Swap the two items so the ordering invariant breaks.
	copy(buf[2:6], []byte{9, 0, 0, 0})
	copy(buf[10:14], []byte{5, 0, 0, 0})
	if _, _, err := Decode(buf); err == nil {
		t.Errorf("Decode of out-of-order payload succeeded, want error")
	}
}

func TestMaxEncodedPairs(t *testing.T) {
	if got := MaxEncodedPairs(0); got != 0 {
		t.Errorf("MaxEncodedPairs(0) = %d, want 0", got)
	}
	if got := MaxEncodedPairs(2); got != 0 {
		t.Errorf("MaxEncodedPairs(2) = %d, want 0", got)
	}
	if got := MaxEncodedPairs(2 + 12*5); got != 5 {
		t.Errorf("MaxEncodedPairs = %d, want 5", got)
	}
}

func TestEncodeIsExact(t *testing.T) {
	// A probability that is not float32-representable must still round-trip
	// exactly: the tuple heap is the authoritative copy of the data.
	p := 0.1 + 1e-9
	u := MustNew(Pair{1, p})
	buf, err := AppendEncode(nil, u)
	if err != nil {
		t.Fatalf("AppendEncode: %v", err)
	}
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Prob(1) != p {
		t.Errorf("decoded prob %.17g, want exactly %.17g", got.Prob(1), p)
	}
}

package uda

import (
	"math"
	"math/rand"
	"testing"
)

func TestVecFromUDA(t *testing.T) {
	u := MustNew(Pair{1, 0.3}, Pair{5, 0.7})
	v := Vec(u)
	if len(v) != 2 || v.Prob(1) != 0.3 || v.Prob(5) != 0.7 || v.Prob(2) != 0 {
		t.Errorf("Vec = %v", v)
	}
	if err := v.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Mutating the vector must not affect the UDA.
	v[0].Prob = 0.9
	if u.Prob(1) != 0.3 {
		t.Errorf("Vec aliases UDA storage")
	}
}

func TestVectorValidate(t *testing.T) {
	bad := Vector{{2, 0.5}, {1, 0.5}}
	if bad.Validate() == nil {
		t.Errorf("out-of-order vector passed Validate")
	}
	bad = Vector{{1, 1.5}}
	if bad.Validate() == nil {
		t.Errorf("value > 1 passed Validate")
	}
	bad = Vector{{1, 0}}
	if bad.Validate() == nil {
		t.Errorf("zero value passed Validate")
	}
}

func TestMaxVec(t *testing.T) {
	a := Vector{{1, 0.3}, {3, 0.8}}
	b := Vector{{1, 0.5}, {2, 0.2}}
	m := MaxVec(a, b)
	want := Vector{{1, 0.5}, {2, 0.2}, {3, 0.8}}
	if len(m) != len(want) {
		t.Fatalf("MaxVec = %v, want %v", m, want)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Errorf("MaxVec[%d] = %v, want %v", i, m[i], want[i])
		}
	}
	// Area of a boundary can exceed 1: it is not a distribution.
	if m.Area() != 1.5 {
		t.Errorf("Area = %g, want 1.5", m.Area())
	}
}

func TestMaxVecEmpty(t *testing.T) {
	a := Vector{{1, 0.5}}
	if got := MaxVec(a, nil); len(got) != 1 || got[0] != a[0] {
		t.Errorf("MaxVec(a, nil) = %v", got)
	}
	if got := MaxVec(nil, nil); len(got) != 0 {
		t.Errorf("MaxVec(nil, nil) = %v", got)
	}
}

func TestDominates(t *testing.T) {
	u := MustNew(Pair{1, 0.3}, Pair{3, 0.7})
	if !(Vector{{1, 0.3}, {3, 0.7}}).Dominates(u) {
		t.Errorf("equal vector should dominate")
	}
	if !(Vector{{1, 0.5}, {2, 0.1}, {3, 0.9}}).Dominates(u) {
		t.Errorf("larger vector should dominate")
	}
	if (Vector{{1, 0.2}, {3, 0.9}}).Dominates(u) {
		t.Errorf("smaller coordinate should not dominate")
	}
	if (Vector{{3, 0.9}}).Dominates(u) {
		t.Errorf("missing coordinate should not dominate")
	}
	var empty UDA
	if !(Vector{}).Dominates(empty) {
		t.Errorf("empty dominates empty")
	}
}

func TestDotUDAUpperBoundsEquality(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		q := Random(r, 20, 5)
		us := make([]UDA, 3)
		bound := Vector{}
		for i := range us {
			us[i] = Random(r, 20, 5)
			bound = MaxVec(bound, Vec(us[i]))
		}
		ub := bound.DotUDA(q)
		for _, u := range us {
			if !bound.Dominates(u) {
				t.Fatalf("boundary does not dominate member")
			}
			if EqualityProb(q, u) > ub+1e-12 {
				t.Fatalf("Lemma 2 violated: Pr=%g > bound=%g", EqualityProb(q, u), ub)
			}
		}
	}
}

func TestVecDistances(t *testing.T) {
	a := Vector{{1, 0.6}, {2, 0.4}}
	b := Vector{{1, 0.4}, {2, 0.6}}
	if got := VecL1(a, b); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("VecL1 = %g, want 0.4", got)
	}
	if got := VecL2(a, b); math.Abs(got-math.Sqrt(0.08)) > 1e-12 {
		t.Errorf("VecL2 = %g", got)
	}
	if got := VecKL(a, a); math.Abs(got) > 1e-12 {
		t.Errorf("VecKL(a,a) = %g, want 0", got)
	}
	if VecKL(a, b) <= 0 {
		t.Errorf("VecKL(a,b) = %g, want > 0", VecKL(a, b))
	}
	// Dispatch agrees with the direct functions.
	for _, d := range []Divergence{L1, L2, KL} {
		udaA := MustNew(Pair{1, 0.6}, Pair{2, 0.4})
		udaB := MustNew(Pair{1, 0.4}, Pair{2, 0.6})
		if got, want := d.VecDistance(Vec(udaA), Vec(udaB)), d.Distance(udaA, udaB); math.Abs(got-want) > 1e-12 {
			t.Errorf("%v VecDistance = %g, Distance = %g", d, got, want)
		}
	}
}

func TestVectorProbAndClone(t *testing.T) {
	v := Vector{{2, 0.1}, {10, 0.9}}
	if v.Prob(10) != 0.9 || v.Prob(3) != 0 {
		t.Errorf("Prob lookups wrong")
	}
	c := v.Clone()
	c[0].Prob = 0.5
	if v[0].Prob != 0.1 {
		t.Errorf("Clone shares storage")
	}
}

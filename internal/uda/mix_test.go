package uda

import (
	"math"
	"math/rand"
	"testing"
)

func TestMixBasic(t *testing.T) {
	u := MustNew(Pair{1, 1})
	v := MustNew(Pair{2, 1})
	m, err := Mix(u, v, 0.3)
	if err != nil {
		t.Fatalf("Mix: %v", err)
	}
	if math.Abs(m.Prob(1)-0.3) > 1e-12 || math.Abs(m.Prob(2)-0.7) > 1e-12 {
		t.Errorf("Mix = %v", m)
	}
}

func TestMixOverlappingSupport(t *testing.T) {
	u := MustNew(Pair{1, 0.6}, Pair{2, 0.4})
	v := MustNew(Pair{2, 0.5}, Pair{3, 0.5})
	m, err := Mix(u, v, 0.5)
	if err != nil {
		t.Fatalf("Mix: %v", err)
	}
	if math.Abs(m.Prob(2)-0.45) > 1e-12 {
		t.Errorf("Mix[2] = %g, want 0.45", m.Prob(2))
	}
	if math.Abs(m.Mass()-1) > 1e-12 {
		t.Errorf("Mix mass = %g", m.Mass())
	}
}

func TestMixBoundaryWeights(t *testing.T) {
	u := MustNew(Pair{1, 1})
	v := MustNew(Pair{2, 1})
	m, err := Mix(u, v, 1)
	if err != nil || !m.Equal(u) {
		t.Errorf("Mix w=1 = (%v, %v), want u", m, err)
	}
	m, err = Mix(u, v, 0)
	if err != nil || !m.Equal(v) {
		t.Errorf("Mix w=0 = (%v, %v), want v", m, err)
	}
	if _, err := Mix(u, v, 1.5); err == nil {
		t.Errorf("weight 1.5 accepted")
	}
	if _, err := Mix(u, v, -0.1); err == nil {
		t.Errorf("weight -0.1 accepted")
	}
}

func TestMixPreservesValidity(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		u := Random(r, 30, 6)
		v := Random(r, 30, 6)
		w := r.Float64()
		m, err := Mix(u, v, w)
		if err != nil {
			t.Fatalf("Mix: %v", err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Mix produced invalid UDA: %v", err)
		}
		if math.Abs(m.Mass()-1) > 1e-9 {
			t.Fatalf("Mix mass = %g", m.Mass())
		}
		// Pointwise check on a few items.
		for _, it := range []uint32{0, 5, 29} {
			want := w*u.Prob(it) + (1-w)*v.Prob(it)
			if math.Abs(m.Prob(it)-want) > 1e-12 {
				t.Fatalf("Mix[%d] = %g, want %g", it, m.Prob(it), want)
			}
		}
	}
}

package uda

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary page format for UDAs, used by the PDR-tree leaf pages and the tuple
// directory:
//
//	count  uint16  number of pairs
//	pairs  count × { item uint32, prob float64 }
//
// All integers are little-endian. Probabilities round-trip exactly: the
// tuple heap and PDR-tree leaves hold the authoritative distributions, so
// query probabilities computed from them must match in-memory evaluation
// bit for bit. (The PDR-tree's *MBR boundaries* may be stored lossily, but
// that compression lives in the pdrtree package and over-estimates by
// construction.)

const pairSize = 4 + 8 // item uint32 + prob float64

// EncodedSize returns the number of bytes AppendEncode will write for u.
func EncodedSize(u UDA) int { return 2 + pairSize*len(u.pairs) }

// MaxEncodedPairs returns how many pairs fit in a buffer of n bytes.
func MaxEncodedPairs(n int) int {
	if n < 2 {
		return 0
	}
	return (n - 2) / pairSize
}

// AppendEncode appends the binary encoding of u to dst and returns the
// extended slice. Encoding fails only if the distribution has more pairs than
// fit in the uint16 count.
func AppendEncode(dst []byte, u UDA) ([]byte, error) {
	if len(u.pairs) > math.MaxUint16 {
		return dst, fmt.Errorf("uda: %d pairs exceed encodable maximum %d", len(u.pairs), math.MaxUint16)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(u.pairs)))
	for _, p := range u.pairs {
		dst = binary.LittleEndian.AppendUint32(dst, p.Item)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Prob))
	}
	return dst, nil
}

// Decode parses one encoded UDA from the front of buf and returns it along
// with the number of bytes consumed. The decoded distribution is validated
// structurally (sorted items, probabilities in range) so that corrupted pages
// surface as errors instead of silent wrong answers.
func Decode(buf []byte) (UDA, int, error) {
	if len(buf) < 2 {
		return UDA{}, 0, fmt.Errorf("uda: short buffer (%d bytes) decoding count", len(buf))
	}
	n := int(binary.LittleEndian.Uint16(buf))
	need := 2 + pairSize*n
	if len(buf) < need {
		return UDA{}, 0, fmt.Errorf("uda: short buffer (%d bytes) decoding %d pairs", len(buf), n)
	}
	pairs := make([]Pair, n)
	off := 2
	for i := 0; i < n; i++ {
		item := binary.LittleEndian.Uint32(buf[off:])
		prob := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		pairs[i] = Pair{Item: item, Prob: prob}
		off += pairSize
	}
	u := UDA{pairs: pairs}
	if err := u.Validate(); err != nil {
		return UDA{}, 0, fmt.Errorf("uda: corrupt encoding: %w", err)
	}
	return u, need, nil
}

// DecodeInto parses one encoded UDA from the front of buf like Decode, but
// appends the decoded pairs to arena instead of allocating a fresh slice.
// The returned UDA aliases the appended region of the returned arena, so it
// is valid as long as the arena's backing memory is: callers decode a batch
// (for example, every tuple on one page) into one arena and reuse
// arena[:0] for the next batch once those UDAs are no longer referenced.
// If a mid-batch append grows the arena, earlier UDAs keep aliasing the old
// backing array, which still holds their pairs — they stay valid.
//
// With a warm arena (capacity from previous batches), the hot decode path
// performs zero allocations; see BenchmarkDecodeInto, which pins that.
// Validation is identical to Decode.
func DecodeInto(buf []byte, arena []Pair) (u UDA, newArena []Pair, consumed int, err error) {
	if len(buf) < 2 {
		return UDA{}, arena, 0, fmt.Errorf("uda: short buffer (%d bytes) decoding count", len(buf))
	}
	n := int(binary.LittleEndian.Uint16(buf))
	need := 2 + pairSize*n
	if len(buf) < need {
		return UDA{}, arena, 0, fmt.Errorf("uda: short buffer (%d bytes) decoding %d pairs", len(buf), n)
	}
	start := len(arena)
	off := 2
	for i := 0; i < n; i++ {
		item := binary.LittleEndian.Uint32(buf[off:])
		prob := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		arena = append(arena, Pair{Item: item, Prob: prob})
		off += pairSize
	}
	u = UDA{pairs: arena[start : start+n : start+n]}
	if err := u.Validate(); err != nil {
		return UDA{}, arena[:start], 0, fmt.Errorf("uda: corrupt encoding: %w", err)
	}
	return u, arena, need, nil
}

package uda

// Ordered-domain extensions. The paper's §2 notes that when the categorical
// domain is totally ordered (D = {1, ..., N}) additional probabilistic
// relations become meaningful: Pr(u > v), Pr(|u − v| < c), and an equality
// relaxed to a window within which values are considered equal. These
// operators treat item codes as positions on that order.

// GreaterProb returns Pr(u > v) under the independence assumption:
// Σ_{i > j} u_i · v_j.
//
// The computation is a single merge over v's items accumulating v's prefix
// mass: for each item a of u, the contribution is u_a times the mass v puts
// strictly below a. Runs in O(len(u) + len(v)).
func GreaterProb(u, v UDA) float64 {
	var s, vBelow float64
	j := 0
	for _, a := range u.pairs {
		for j < len(v.pairs) && v.pairs[j].Item < a.Item {
			vBelow += v.pairs[j].Prob
			j++
		}
		s += a.Prob * vBelow
	}
	return s
}

// LessProb returns Pr(u < v) = Pr(v > u).
func LessProb(u, v UDA) float64 { return GreaterProb(v, u) }

// WithinProb returns Pr(|u − v| ≤ c) under independence:
// Σ_{|i−j| ≤ c} u_i · v_j. With c = 0 it reduces to EqualityProb.
//
// It uses a sliding window over v's sorted items: for each item a of u, the
// qualifying window of v is [a−c, a+c]. The window's endpoints only advance,
// so the total work is O(len(u) + len(v) + matches).
func WithinProb(u, v UDA, c uint32) float64 {
	if c == 0 {
		return EqualityProb(u, v)
	}
	var s float64
	lo := 0
	for _, a := range u.pairs {
		var min uint32
		if a.Item > c {
			min = a.Item - c
		}
		max := a.Item + c
		if max < a.Item { // overflow: window extends to the top of the domain
			max = ^uint32(0)
		}
		for lo < len(v.pairs) && v.pairs[lo].Item < min {
			lo++
		}
		for j := lo; j < len(v.pairs) && v.pairs[j].Item <= max; j++ {
			s += a.Prob * v.pairs[j].Prob
		}
	}
	return s
}

// WindowEqualityProb is the paper's relaxed equality: two values are
// considered equal when they fall within a window of width c of each other.
// It is an alias for WithinProb provided for readability at call sites that
// implement windowed PETQ.
func WindowEqualityProb(u, v UDA, c uint32) float64 { return WithinProb(u, v, c) }

// ExpectedItem returns the mean item position Σ i · p_i of an ordered-domain
// UDA, normalized by the total mass. It returns 0, ErrEmpty for the empty
// distribution.
func ExpectedItem(u UDA) (float64, error) {
	if u.IsEmpty() {
		return 0, ErrEmpty
	}
	mass := u.Mass()
	var s float64
	for _, p := range u.pairs {
		s += float64(p.Item) * p.Prob
	}
	return s / mass, nil
}

// CDF returns Pr(u ≤ item) for an ordered domain.
func CDF(u UDA, item uint32) float64 {
	var s float64
	for _, p := range u.pairs {
		if p.Item > item {
			break
		}
		s += p.Prob
	}
	return s
}

package uda

import (
	"math"
	"strings"
	"testing"
)

func TestNewSortsAndMergesDuplicates(t *testing.T) {
	u, err := New(Pair{5, 0.2}, Pair{1, 0.3}, Pair{5, 0.1}, Pair{3, 0.4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := []Pair{{1, 0.3}, {3, 0.4}, {5, 0.30000000000000004}}
	got := u.Pairs()
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Item != want[i].Item || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
			t.Errorf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNewDropsZeroProbability(t *testing.T) {
	u, err := New(Pair{1, 0.5}, Pair{2, 0}, Pair{3, 0.5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if u.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (zero-prob pair should be dropped)", u.Len())
	}
	if u.Prob(2) != 0 {
		t.Errorf("Prob(2) = %g, want 0", u.Prob(2))
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cases := []struct {
		name  string
		pairs []Pair
	}{
		{"negative", []Pair{{1, -0.1}}},
		{"nan", []Pair{{1, math.NaN()}}},
		{"inf", []Pair{{1, math.Inf(1)}}},
		{"mass exceeds one", []Pair{{1, 0.7}, {2, 0.7}}},
		{"duplicate mass exceeds one", []Pair{{1, 0.7}, {1, 0.7}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.pairs...); err == nil {
				t.Errorf("New(%v) succeeded, want error", tc.pairs)
			}
		})
	}
}

func TestPartialMassAllowed(t *testing.T) {
	// The paper: "the sum can be < 1 in the case of missing values".
	u, err := New(Pair{1, 0.3}, Pair{2, 0.4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := u.Mass(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Mass = %g, want 0.7", got)
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustNew with invalid input did not panic")
		}
	}()
	MustNew(Pair{1, 2.0})
}

func TestFromMapAndFromVector(t *testing.T) {
	m, err := FromMap(map[uint32]float64{4: 0.25, 0: 0.75})
	if err != nil {
		t.Fatalf("FromMap: %v", err)
	}
	v, err := FromVector([]float64{0.75, 0, 0, 0, 0.25})
	if err != nil {
		t.Fatalf("FromVector: %v", err)
	}
	if !m.Equal(v) {
		t.Errorf("FromMap %v != FromVector %v", m, v)
	}
}

func TestCertain(t *testing.T) {
	u := Certain(7)
	if u.Prob(7) != 1 || u.Len() != 1 || u.Mass() != 1 {
		t.Errorf("Certain(7) = %v", u)
	}
}

func TestProbBinarySearch(t *testing.T) {
	u := MustNew(Pair{2, 0.1}, Pair{10, 0.2}, Pair{30, 0.3}, Pair{100, 0.4})
	for _, tc := range []struct {
		item uint32
		want float64
	}{{2, 0.1}, {10, 0.2}, {30, 0.3}, {100, 0.4}, {0, 0}, {11, 0}, {101, 0}} {
		if got := u.Prob(tc.item); got != tc.want {
			t.Errorf("Prob(%d) = %g, want %g", tc.item, got, tc.want)
		}
	}
}

func TestModeAndMaxItem(t *testing.T) {
	u := MustNew(Pair{1, 0.2}, Pair{5, 0.5}, Pair{9, 0.3})
	item, p, err := u.Mode()
	if err != nil || item != 5 || p != 0.5 {
		t.Errorf("Mode = (%d, %g, %v), want (5, 0.5, nil)", item, p, err)
	}
	mx, ok := u.MaxItem()
	if !ok || mx != 9 {
		t.Errorf("MaxItem = (%d, %v), want (9, true)", mx, ok)
	}

	var empty UDA
	if _, _, err := empty.Mode(); err != ErrEmpty {
		t.Errorf("empty Mode err = %v, want ErrEmpty", err)
	}
	if _, ok := empty.MaxItem(); ok {
		t.Errorf("empty MaxItem ok = true, want false")
	}
}

func TestModeTieBreaksLowestItem(t *testing.T) {
	u := MustNew(Pair{3, 0.5}, Pair{7, 0.5})
	item, _, err := u.Mode()
	if err != nil || item != 3 {
		t.Errorf("Mode = (%d, %v), want item 3", item, err)
	}
}

func TestNormalize(t *testing.T) {
	u := MustNew(Pair{1, 0.2}, Pair{2, 0.2})
	n, err := u.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if math.Abs(n.Mass()-1) > 1e-12 {
		t.Errorf("normalized mass = %g, want 1", n.Mass())
	}
	if math.Abs(n.Prob(1)-0.5) > 1e-12 {
		t.Errorf("normalized Prob(1) = %g, want 0.5", n.Prob(1))
	}
	var empty UDA
	if _, err := empty.Normalize(); err != ErrEmpty {
		t.Errorf("empty Normalize err = %v, want ErrEmpty", err)
	}
}

func TestTop(t *testing.T) {
	u := MustNew(Pair{1, 0.1}, Pair{2, 0.4}, Pair{3, 0.2}, Pair{4, 0.3})
	top2 := u.Top(2)
	if top2.Len() != 2 || top2.Prob(2) != 0.4 || top2.Prob(4) != 0.3 {
		t.Errorf("Top(2) = %v, want items 2 and 4", top2)
	}
	if got := u.Top(10); !got.Equal(u) {
		t.Errorf("Top(10) = %v, want unchanged", got)
	}
	if got := u.Top(0); !got.IsEmpty() {
		t.Errorf("Top(0) = %v, want empty", got)
	}
	if err := top2.Validate(); err != nil {
		t.Errorf("Top(2) invalid: %v", err)
	}
}

func TestPairsByProb(t *testing.T) {
	u := MustNew(Pair{1, 0.2}, Pair{2, 0.5}, Pair{3, 0.2}, Pair{4, 0.1})
	got := u.PairsByProb()
	want := []Pair{{2, 0.5}, {1, 0.2}, {3, 0.2}, {4, 0.1}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PairsByProb[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPairsReturnsCopy(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{2, 0.5})
	p := u.Pairs()
	p[0].Prob = 99
	if u.Prob(1) != 0.5 {
		t.Errorf("mutating Pairs() result changed the UDA")
	}
}

func TestString(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{2, 0.5})
	s := u.String()
	if !strings.HasPrefix(s, "{") || !strings.Contains(s, "(1, 0.5)") {
		t.Errorf("String = %q", s)
	}
	var empty UDA
	if empty.String() != "{}" {
		t.Errorf("empty String = %q, want {}", empty.String())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := MustNew(Pair{1, 0.5}, Pair{2, 0.5})
	if err := good.Validate(); err != nil {
		t.Errorf("valid UDA failed Validate: %v", err)
	}
	bad := UDA{pairs: []Pair{{2, 0.5}, {1, 0.5}}} // out of order
	if bad.Validate() == nil {
		t.Errorf("out-of-order UDA passed Validate")
	}
	bad = UDA{pairs: []Pair{{1, 0.5}, {1, 0.5}}} // duplicate item
	if bad.Validate() == nil {
		t.Errorf("duplicate-item UDA passed Validate")
	}
	bad = UDA{pairs: []Pair{{1, 1.5}}} // prob > 1
	if bad.Validate() == nil {
		t.Errorf("prob>1 UDA passed Validate")
	}
}

package uda

import (
	"math"
	"testing"
)

func TestEqualityProbPaperExamples(t *testing.T) {
	// §2 of the paper: for u = v = (0.2,0.2,0.2,0.2,0.2), Pr(u=v) = 0.2;
	// for u = (0.6,0.4,0,0,0) and v = (0.4,0.6,0,0,0), Pr(u=v) = 0.48.
	flat := MustNew(Pair{0, 0.2}, Pair{1, 0.2}, Pair{2, 0.2}, Pair{3, 0.2}, Pair{4, 0.2})
	if got := EqualityProb(flat, flat); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Pr(flat=flat) = %g, want 0.2", got)
	}
	u := MustNew(Pair{0, 0.6}, Pair{1, 0.4})
	v := MustNew(Pair{0, 0.4}, Pair{1, 0.6})
	if got := EqualityProb(u, v); math.Abs(got-0.48) > 1e-12 {
		t.Errorf("Pr(u=v) = %g, want 0.48", got)
	}
}

func TestEqualityProbDisjointSupports(t *testing.T) {
	u := MustNew(Pair{1, 0.5}, Pair{2, 0.5})
	v := MustNew(Pair{3, 0.5}, Pair{4, 0.5})
	if got := EqualityProb(u, v); got != 0 {
		t.Errorf("Pr over disjoint supports = %g, want 0", got)
	}
}

func TestEqualityProbWithCertain(t *testing.T) {
	u := MustNew(Pair{1, 0.3}, Pair{2, 0.7})
	if got := EqualityProb(u, Certain(2)); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Pr(u=certain 2) = %g, want 0.7", got)
	}
	if got := EqualsItemProb(u, 2); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("EqualsItemProb = %g, want 0.7", got)
	}
}

func TestEqualityProbEmpty(t *testing.T) {
	var empty UDA
	u := MustNew(Pair{1, 1})
	if got := EqualityProb(empty, u); got != 0 {
		t.Errorf("Pr(empty=u) = %g, want 0", got)
	}
	if got := EqualityProb(empty, empty); got != 0 {
		t.Errorf("Pr(empty=empty) = %g, want 0", got)
	}
}

func TestDotAgainstBoundaryVector(t *testing.T) {
	q := MustNew(Pair{3, 0.4}, Pair{5, 0.2}, Pair{6, 0.1})
	// An MBR boundary is not a distribution; its entries may sum past 1.
	boundary := []Pair{{3, 0.9}, {4, 0.8}, {6, 0.92}}
	got := Dot(q, boundary)
	want := 0.4*0.9 + 0.1*0.92
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Dot = %g, want %g", got, want)
	}
}

func TestDotEmptyWeight(t *testing.T) {
	q := MustNew(Pair{1, 1})
	if got := Dot(q, nil); got != 0 {
		t.Errorf("Dot with empty weights = %g, want 0", got)
	}
}

func TestMaxAndSelfEqualityProb(t *testing.T) {
	u := MustNew(Pair{1, 0.6}, Pair{2, 0.4})
	if got := MaxEqualityProb(u); got != 0.6 {
		t.Errorf("MaxEqualityProb = %g, want 0.6", got)
	}
	if got := SelfEqualityProb(u); math.Abs(got-(0.36+0.16)) > 1e-12 {
		t.Errorf("SelfEqualityProb = %g, want 0.52", got)
	}
	var empty UDA
	if MaxEqualityProb(empty) != 0 || SelfEqualityProb(empty) != 0 {
		t.Errorf("empty distribution: Max=%g Self=%g, want 0, 0",
			MaxEqualityProb(empty), SelfEqualityProb(empty))
	}
}

package server

import (
	"errors"
	"io"
	"net/http"
	"sync"

	"ucat/internal/uda"
	"ucat/internal/wire"
)

// Protocol labels, used for content negotiation, per-protocol metrics, and
// the flight recorder's proto field.
const (
	protoJSON   = "json"
	protoBinary = "binary"
)

// wireBuf is a pooled byte buffer for reading request frames and building
// response frames. Pooling the wrapper (not the slice) keeps Get/Put free of
// interface-boxing allocations.
type wireBuf struct{ b []byte }

var reqBufPool = sync.Pool{New: func() any { return &wireBuf{b: make([]byte, 0, 1024)} }}
var respBufPool = sync.Pool{New: func() any { return &wireBuf{b: make([]byte, 0, 4096)} }}

// wireReqPool recycles decoded wire requests so steady-state binary decode
// reuses one Pairs slice per handler instead of allocating per request.
var wireReqPool = sync.Pool{New: func() any { return new(wire.Request) }}

// wireContentType is the pre-built header value the binary response path
// installs without allocating (net/http only reads header slices).
var wireContentType = []string{wire.ContentType}

// isBinary reports whether the request negotiated the binary protocol: the
// client declares it by sending its query frame as application/x-ucatwire.
func isBinary(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if len(ct) < len(wire.ContentType) {
		return false
	}
	// Exact match or a parameterized variant ("...; charset=..." would be
	// odd for a binary type, but cheap to accept).
	return ct[:len(wire.ContentType)] == wire.ContentType
}

// readFrame reads the whole request body (one frame) into buf's reused
// capacity. The reader is capped at one frame plus header by the caller, so
// a runaway body terminates with *http.MaxBytesError, not memory growth.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// decodeBinary reads and decodes one query frame into an executable request.
// The returned error text is client-facing (it travels in-band in an error
// frame); oversized frames surface as the binary analog of the JSON body cap.
func (s *Server) decodeBinary(w http.ResponseWriter, r *http.Request) (*request, int64, error) {
	rb := reqBufPool.Get().(*wireBuf)
	defer reqBufPool.Put(rb)
	buf, err := readFrame(http.MaxBytesReader(w, r.Body, wire.MaxFrameBytes+wire.HeaderLen), rb.b[:0])
	rb.b = buf
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, 0, wire.ErrFrameTooLarge
		}
		return nil, 0, errors.New("reading query frame: " + err.Error())
	}
	frameType, body, err := wire.DecodeFrame(buf)
	if err != nil {
		return nil, 0, err
	}
	if frameType != wire.FrameQuery {
		return nil, 0, errors.New("wire: response frame sent as a query")
	}
	wr := wireReqPool.Get().(*wire.Request)
	defer wireReqPool.Put(wr)
	if err := wire.DecodeRequest(body, wr); err != nil {
		return nil, 0, err
	}
	req, err := parseWireRequest(wr)
	if err != nil {
		return nil, 0, err
	}
	return req, wr.TimeoutMS, nil
}

// parseWireRequest validates a decoded binary query into an executable
// request, the binary twin of parseRequest. uda.New copies the pairs, so the
// pooled wire.Request stays reusable after return.
func parseWireRequest(wr *wire.Request) (*request, error) {
	q, err := uda.New(wr.Pairs...)
	if err != nil {
		return nil, errors.New("bad query distribution: " + err.Error())
	}
	req := &request{kind: wr.Kind.String(), q: q, tau: wr.Tau, k: wr.K, c: wr.C,
		td: wr.TD, div: wr.Div, limit: wr.Limit, explain: wr.Explain}
	return req, validateRequest(req)
}

// writeBinary renders a delivered result as one response frame. This is the
// steady-state binary response path and must stay allocation-free: a pooled
// buffer absorbs the frame, the encoder is append-only, and the Content-Type
// header is installed as a shared pre-built slice. The transport status is
// always 200 — errors travel in-band (TestWireEncodePathAllocs pins this
// function's allocation budget).
func (s *Server) writeBinary(w http.ResponseWriter, status int, body *QueryResponse) {
	rb := respBufPool.Get().(*wireBuf)
	rb.b = appendWireResponse(rb.b[:0], status, s.retrySecs, body)
	w.Header()["Content-Type"] = wireContentType
	_, _ = w.Write(rb.b)
	respBufPool.Put(rb)
}

// appendWireResponse translates a QueryResponse (plus its logical status)
// into a wire response frame appended onto dst. Matches and Neighbors are
// shared, not copied: WireMatch/WireNeighbor are the wire types.
func appendWireResponse(dst []byte, status, retrySecs int, body *QueryResponse) []byte {
	wr := wire.Response{
		Kind:      kindCode(body.Kind),
		TraceID:   body.TraceID,
		Count:     body.Count,
		Truncated: body.Truncated,
		Matches:   body.Matches,
		Neighbors: body.Neighbors,
		ElapsedNS: body.ElapsedNS,
		Batched:   body.Batched,
		BatchSize: body.BatchSize,
		Slow:      body.Slow,
		Explain:   body.Explain,
	}
	if body.IO != nil {
		wr.HasIO = true
		wr.Reads = body.IO.Reads
		wr.Hits = body.IO.Hits
	}
	if status != 0 && status != http.StatusOK {
		wr.Status = status
		wr.Err = body.Error
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			wr.RetryAfterSec = retrySecs
		}
	}
	return wire.AppendResponse(dst, &wr)
}

// writeBinaryError emits an in-band error frame. kind may be "" when the
// failure precedes kind validation (the frame then carries kind code 0 with
// the error flag set — clients must key on the status, not the kind).
func (s *Server) writeBinaryError(w http.ResponseWriter, kind string, traceID uint64, status int, msg string) {
	body := QueryResponse{Kind: kind, TraceID: traceID, Error: msg}
	s.writeBinary(w, status, &body)
}

// kindCode maps a validated kind name to its wire code.
func kindCode(kind string) wire.Kind {
	k, _ := wire.KindOf(kind)
	return k
}

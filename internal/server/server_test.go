package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/uda"
)

// buildRelation constructs a small deterministic relation: n tuples over an
// 8-item domain, each spreading mass over two adjacent items.
func buildRelation(t *testing.T, kind core.Kind, n int) *core.Relation {
	t.Helper()
	rel, err := core.NewRelation(core.Options{Kind: kind, PoolFrames: 256})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	for i := 0; i < n; i++ {
		a := uint32(i % 8)
		b := (a + 1) % 8
		pa := 0.3 + float64(i%5)*0.1 // 0.3..0.7
		u, err := uda.New(uda.Pair{Item: a, Prob: pa}, uda.Pair{Item: b, Prob: 1 - pa})
		if err != nil {
			t.Fatalf("uda.New: %v", err)
		}
		if _, err := rel.Insert(u); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	return rel
}

// newTestServer builds a Server (with a private registry) and an httptest
// front end, both torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Relation == nil && cfg.Live == nil {
		cfg.Relation = buildRelation(t, core.PDRTree, 400)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// postQuery sends one query document and decodes the answer.
func postQuery(t *testing.T, ts *httptest.Server, body string) (int, QueryResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, qr
}

func TestQueryKindsEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want func(t *testing.T, qr QueryResponse)
	}{
		{"petq", `{"kind":"petq","query":"0:0.5,1:0.5","tau":0.2}`, func(t *testing.T, qr QueryResponse) {
			if qr.Count == 0 || len(qr.Matches) == 0 {
				t.Fatalf("petq found nothing: %+v", qr)
			}
			for i := 1; i < len(qr.Matches); i++ {
				if qr.Matches[i].Prob > qr.Matches[i-1].Prob {
					t.Fatalf("matches not sorted descending at %d", i)
				}
			}
		}},
		{"topk", `{"kind":"topk","query":"0:0.5,1:0.5","k":3}`, func(t *testing.T, qr QueryResponse) {
			if len(qr.Matches) != 3 {
				t.Fatalf("topk k=3 returned %d matches", len(qr.Matches))
			}
		}},
		{"window", `{"kind":"window","query":"2:1.0","c":1,"tau":0.2}`, func(t *testing.T, qr QueryResponse) {
			if qr.Count == 0 {
				t.Fatalf("window found nothing")
			}
		}},
		{"windowtopk", `{"kind":"windowtopk","query":"2:1.0","c":1,"k":2}`, func(t *testing.T, qr QueryResponse) {
			if len(qr.Matches) != 2 {
				t.Fatalf("windowtopk k=2 returned %d matches", len(qr.Matches))
			}
		}},
		{"dstq", `{"kind":"dstq","query":"0:0.5,1:0.5","td":0.5,"div":"L1"}`, func(t *testing.T, qr QueryResponse) {
			if qr.Count == 0 || len(qr.Neighbors) == 0 {
				t.Fatalf("dstq found nothing: %+v", qr)
			}
		}},
		{"neighbor", `{"kind":"neighbor","query":"0:0.5,1:0.5","k":4}`, func(t *testing.T, qr QueryResponse) {
			if len(qr.Neighbors) != 4 {
				t.Fatalf("neighbor k=4 returned %d", len(qr.Neighbors))
			}
			for i := 1; i < len(qr.Neighbors); i++ {
				if qr.Neighbors[i].Dist < qr.Neighbors[i-1].Dist {
					t.Fatalf("neighbors not sorted ascending at %d", i)
				}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, qr := postQuery(t, ts, tc.body)
			if status != http.StatusOK {
				t.Fatalf("status %d, body %+v", status, qr)
			}
			if qr.IO == nil {
				t.Fatalf("response carries no io accounting")
			}
			tc.want(t, qr)
		})
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"kind":`, http.StatusBadRequest},
		{"unknown field", `{"kind":"petq","query":"0:1.0","tau":0.1,"bogus":1}`, http.StatusBadRequest},
		{"unknown kind", `{"kind":"mystery","query":"0:1.0"}`, http.StatusBadRequest},
		{"bad distribution", `{"kind":"petq","query":"0:2.0","tau":0.1}`, http.StatusBadRequest},
		{"tau out of range", `{"kind":"petq","query":"0:1.0","tau":1.5}`, http.StatusBadRequest},
		{"topk k missing", `{"kind":"topk","query":"0:1.0"}`, http.StatusBadRequest},
		{"window c missing", `{"kind":"window","query":"0:1.0","tau":0.1}`, http.StatusBadRequest},
		{"dstq bad divergence", `{"kind":"dstq","query":"0:1.0","td":0.1,"div":"cosine"}`, http.StatusBadRequest},
		{"negative limit", `{"kind":"petq","query":"0:1.0","tau":0.1,"limit":-2}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, qr := postQuery(t, ts, tc.body)
			if status != tc.want {
				t.Fatalf("status = %d, want %d (%+v)", status, tc.want, qr)
			}
			if qr.Error == "" {
				t.Fatalf("error document missing the error field")
			}
		})
	}

	t.Run("GET not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/query")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

func TestAdmissionOverflow429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Park the only worker, then fill the queue's single slot, so the next
	// admission must overflow.
	gate := make(chan struct{})
	defer close(gate)
	if !s.enqueue(&task{gate: gate}) {
		t.Fatalf("could not park the worker")
	}
	waitFor(t, func() bool { return len(s.queue) == 0 }) // worker picked it up
	if !s.enqueue(&task{gate: gate}) {
		t.Fatalf("could not fill the queue")
	}

	status, qr := postQuery(t, ts, `{"kind":"petq","query":"0:1.0","tau":0.1}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%+v)", status, qr)
	}
	if qr.Error == "" {
		t.Fatalf("429 without an error document")
	}
	// The Retry-After hint is part of the contract.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"kind":"petq","query":"0:1.0","tau":0.1}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second overflow status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
}

func TestQueuedDeadline408(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	gate := make(chan struct{})
	defer close(gate)
	if !s.enqueue(&task{gate: gate}) {
		t.Fatalf("could not park the worker")
	}
	waitFor(t, func() bool { return len(s.queue) == 0 })

	// The request sits behind the parked worker until its deadline fires.
	status, qr := postQuery(t, ts, `{"kind":"petq","query":"0:1.0","tau":0.1,"timeout_ms":30}`)
	if status != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 (%+v)", status, qr)
	}
}

func TestGracefulDrainCompletesInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	gate := make(chan struct{})
	if !s.enqueue(&task{gate: gate}) {
		t.Fatalf("could not park the worker")
	}
	waitFor(t, func() bool { return len(s.queue) == 0 })

	// An admitted query waits behind the parked worker...
	type answer struct {
		status int
		qr     QueryResponse
	}
	got := make(chan answer, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"kind":"petq","query":"0:1.0","tau":0.1,"timeout_ms":5000}`))
		if err != nil {
			got <- answer{status: -1}
			return
		}
		defer resp.Body.Close()
		var qr QueryResponse
		_ = json.NewDecoder(resp.Body).Decode(&qr)
		got <- answer{status: resp.StatusCode, qr: qr}
	}()
	waitFor(t, func() bool { return len(s.queue) == 1 })

	// ...Shutdown begins draining...
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return s.Draining() })

	// ...new queries are refused with 503...
	status, _ := postQuery(t, ts, `{"kind":"petq","query":"0:1.0","tau":0.1}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("during drain status = %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}

	// ...and releasing the worker lets the in-flight query finish normally.
	close(gate)
	a := <-got
	if a.status != http.StatusOK {
		t.Fatalf("inflight query finished with %d (%+v), want 200", a.status, a.qr)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestBatcherCoalesces(t *testing.T) {
	rel := buildRelation(t, core.InvertedIndex, 400)
	s, ts := newTestServer(t, Config{
		Relation:    rel,
		Workers:     2,
		BatchWindow: 250 * time.Millisecond,
		BatchMax:    16,
	})

	taus := []float64{0.3, 0.4, 0.5, 0.6}
	var wg sync.WaitGroup
	results := make([]QueryResponse, len(taus))
	statuses := make([]int, len(taus))
	for i, tau := range taus {
		wg.Add(1)
		go func(i int, tau float64) {
			defer wg.Done()
			body := fmt.Sprintf(`{"kind":"petq","query":"0:0.5,1:0.5","tau":%g,"timeout_ms":5000}`, tau)
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				statuses[i] = -1
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			_ = json.NewDecoder(resp.Body).Decode(&results[i])
		}(i, tau)
	}
	wg.Wait()

	for i, tau := range taus {
		if statuses[i] != http.StatusOK {
			t.Fatalf("tau=%g status %d", tau, statuses[i])
		}
		if !results[i].Batched {
			t.Fatalf("tau=%g answer not batched", tau)
		}
		// Riders must receive exactly what a direct PETQ would.
		want, err := rel.PETQ(mustUDA(t, "0:0.5,1:0.5"), tau)
		if err != nil {
			t.Fatalf("direct PETQ: %v", err)
		}
		if results[i].Count != len(want) {
			t.Fatalf("tau=%g served %d answers, direct %d", tau, results[i].Count, len(want))
		}
		for j, m := range results[i].Matches {
			if m.TID != want[j].TID || m.Prob != want[j].Prob {
				t.Fatalf("tau=%g answer %d differs: served %v, direct %v", tau, j, m, want[j])
			}
		}
	}
	if s.met.batchJoined.Value() == 0 {
		t.Fatalf("no probe ever joined a batch (leaders=%d joined=%d)",
			s.met.batchLeaders.Value(), s.met.batchJoined.Value())
	}
}

func TestServedMatchesDirect(t *testing.T) {
	rel := buildRelation(t, core.PDRTree, 400)
	_, ts := newTestServer(t, Config{Relation: rel})
	queries := []string{"0:1.0", "3:0.7,4:0.3", "1:0.25,2:0.25,3:0.5", "7:0.9,0:0.1"}
	for _, qs := range queries {
		want, err := rel.PETQ(mustUDA(t, qs), 0.2)
		if err != nil {
			t.Fatalf("direct PETQ(%s): %v", qs, err)
		}
		status, qr := postQuery(t, ts,
			fmt.Sprintf(`{"kind":"petq","query":"%s","tau":0.2,"limit":100000}`, qs))
		if status != http.StatusOK {
			t.Fatalf("query %s: status %d", qs, status)
		}
		if qr.Count != len(want) || len(qr.Matches) != len(want) {
			t.Fatalf("query %s: served %d/%d answers, direct %d", qs, qr.Count, len(qr.Matches), len(want))
		}
		for j, m := range qr.Matches {
			if m.TID != want[j].TID || m.Prob != want[j].Prob {
				t.Fatalf("query %s answer %d differs: served %v direct %v", qs, j, m, want[j])
			}
		}
	}
}

func TestStatsAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, _ := postQuery(t, ts, `{"kind":"petq","query":"0:1.0","tau":0.1}`); status != http.StatusOK {
		t.Fatalf("warmup query status %d", status)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	var stats statsPayload
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if stats.Totals.Requests == 0 || stats.Totals.Completed == 0 {
		t.Fatalf("stats did not count the query: %+v", stats.Totals)
	}
	if stats.Relation.Tuples == 0 || stats.Config.Workers == 0 {
		t.Fatalf("stats missing relation/config: %+v", stats)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, mresp.Body); err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	n, err := obs.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("/metrics is not machine-readable: %v", err)
	}
	if n == 0 {
		t.Fatalf("/metrics exported no samples")
	}
	if !strings.Contains(buf.String(), "ucat_serve_requests_total") {
		t.Fatalf("/metrics missing the request counter")
	}
}

func TestExplainSpanTree(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, qr := postQuery(t, ts, `{"kind":"petq","query":"0:0.5,1:0.5","tau":0.3,"explain":true}`)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !strings.Contains(qr.Explain, "serve.petq") {
		t.Fatalf("explain output missing the root span:\n%s", qr.Explain)
	}
}

func TestAnswerLimitTruncation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, qr := postQuery(t, ts, `{"kind":"petq","query":"0:0.5,1:0.5","tau":0.05,"limit":3}`)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(qr.Matches) != 3 || !qr.Truncated {
		t.Fatalf("limit=3 returned %d matches, truncated=%v", len(qr.Matches), qr.Truncated)
	}
	if qr.Count <= 3 {
		t.Fatalf("count %d should report the untruncated answer size", qr.Count)
	}
}

// mustUDA parses the item:prob notation or fails the test.
func mustUDA(t *testing.T, s string) uda.UDA {
	t.Helper()
	var pairs []uda.Pair
	for _, f := range strings.Split(s, ",") {
		var item uint32
		var prob float64
		if _, err := fmt.Sscanf(f, "%d:%g", &item, &prob); err != nil {
			t.Fatalf("bad test query %q: %v", s, err)
		}
		pairs = append(pairs, uda.Pair{Item: item, Prob: prob})
	}
	u, err := uda.New(pairs...)
	if err != nil {
		t.Fatalf("uda.New(%q): %v", s, err)
	}
	return u
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within 2s")
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ucat/internal/cliutil"
	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/pager"
	"ucat/internal/uda"
	"ucat/internal/wire"
)

// QueryRequest is the wire format of POST /v1/query. Kind selects the query
// and decides which other fields are read:
//
//	petq        query, tau            — equality threshold (Definition 4)
//	topk        query, k              — k most probable equals
//	window      query, c, tau         — relaxed window equality (ordered domains)
//	windowtopk  query, c, k           — window top-k
//	dstq        query, td, div        — distributional similarity threshold
//	neighbor    query, k, div         — k distributionally nearest tuples
//
// Query uses the item:prob,item:prob,... notation shared with the CLI tools.
// TimeoutMS bounds the request (capped by the server's -maxtimeout); Limit
// caps the answers returned (count still reports the full answer size);
// Explain adds the query's trace span tree to the response.
type QueryRequest struct {
	Kind      string  `json:"kind"`
	Query     string  `json:"query"`
	Tau       float64 `json:"tau"`
	K         int     `json:"k"`
	C         uint32  `json:"c"`
	TD        float64 `json:"td"`
	Div       string  `json:"div"`
	Limit     int     `json:"limit"`
	TimeoutMS int64   `json:"timeout_ms"`
	Explain   bool    `json:"explain"`
}

// WireMatch is one equality-query answer on the wire. It is the binary
// protocol's match type verbatim (with JSON tags for the JSON protocol), so
// an answer built once serves both encodings without conversion.
type WireMatch = wire.Match

// WireNeighbor is one similarity-query answer on the wire.
type WireNeighbor = wire.Neighbor

// WireIO is the per-request I/O attribution: the local tally of the
// pager.Session the request fetched through, exact regardless of what other
// requests did to the shared pool meanwhile. For batched requests it is the
// cost of the shared traversal, reported to every rider.
type WireIO struct {
	Reads   uint64  `json:"reads"`
	Hits    uint64  `json:"hits"`
	IOs     uint64  `json:"ios"`
	HitRate float64 `json:"hit_rate"`
}

// QueryResponse is the wire format of a /v1/query answer. Matches is set for
// the equality kinds, Neighbors for dstq and neighbor. Count is the full
// answer size even when Limit truncated the returned slice.
type QueryResponse struct {
	Kind      string         `json:"kind"`
	TraceID   uint64         `json:"trace_id,omitempty"`
	Count     int            `json:"count"`
	Truncated bool           `json:"truncated,omitempty"`
	Matches   []WireMatch    `json:"matches,omitempty"`
	Neighbors []WireNeighbor `json:"neighbors,omitempty"`
	IO        *WireIO        `json:"io,omitempty"`
	ElapsedNS int64          `json:"elapsed_ns"`
	Batched   bool           `json:"batched,omitempty"`
	BatchSize int            `json:"batch_size,omitempty"`
	Slow      bool           `json:"slow,omitempty"`
	Explain   string         `json:"explain,omitempty"`
	Error     string         `json:"error,omitempty"`
}

// request is one admitted query: the parsed parameters plus the plumbing the
// worker needs to answer it.
type request struct {
	kind    string
	q       uda.UDA
	tau     float64
	k       int
	c       uint32
	td      float64
	div     uda.Divergence
	limit   int
	explain bool
	key     string // batch-compatibility key ("" for unbatchable kinds)
	proto   string // negotiated wire protocol: protoJSON or protoBinary

	ctx  context.Context
	done chan result // buffered; exactly one result is ever delivered
	enq  time.Time

	// flight is the request's flight-recorder handle. Ownership transfers
	// with the request: once the handler hands the request to the batcher or
	// the queue, only the executing side may touch flight (Complete recycles
	// it); the handler keeps the plain id copy for its own logging.
	flight *obs.Flight
	id     uint64
}

// result is what a worker (or the admission path) delivers back to the
// waiting handler.
type result struct {
	status int
	body   QueryResponse
	rec    obs.RequestRecord // the completed flight record, for the request log
}

// deliver hands the result to the waiting handler without ever blocking.
func (req *request) deliver(res result) {
	select {
	case req.done <- res:
	default:
	}
}

// task is one unit of worker work: either a single request or a coalesced
// PETQ batch (exactly one of the fields is set). gate is a test-only hook:
// a worker that receives a gated task parks on the channel, which lets the
// admission tests fill the queue and exercise overflow deterministically.
type task struct {
	req   *request
	batch *batch
	gate  chan struct{}
}

// defaultAnswerLimit caps the answers returned when the request does not
// choose its own limit — a network API should not stream an unbounded array
// by accident.
const defaultAnswerLimit = 1000

// maxBodyBytes bounds the request document.
const maxBodyBytes = 1 << 20

// handleQuery is POST /v1/query: negotiate the protocol, decode, validate,
// admit, wait. The protocol is chosen by the request's Content-Type — an
// application/x-ucatwire body selects the binary protocol (whose errors,
// Retry-After hints, and trace IDs travel in-band over a 200 transport);
// everything else is the JSON protocol with plain HTTP statuses.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Inc()
	proto := protoJSON
	if isBinary(r) {
		proto = protoBinary
	}
	s.met.protoRequests[proto].Inc()
	if r.Method != http.MethodPost {
		s.met.badRequests.Inc()
		s.writeFail(w, proto, "", 0, http.StatusMethodNotAllowed, "use POST with a query body")
		return
	}
	var (
		req       *request
		timeoutMS int64
		err       error
	)
	if proto == protoBinary {
		req, timeoutMS, err = s.decodeBinary(w, r)
	} else {
		req, timeoutMS, err = s.decodeJSON(w, r)
	}
	if err != nil {
		s.met.badRequests.Inc()
		s.writeFail(w, proto, "", 0, http.StatusBadRequest, err.Error())
		return
	}
	req.proto = proto

	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	req.ctx = ctx
	req.done = make(chan result, 1)
	req.enq = time.Now()

	// Open the request's flight: a monotonic trace ID plus a pooled span
	// recorder, always on. Malformed requests (above) are never recorded —
	// the flight recorder tracks admitted work, not parse noise.
	req.flight = s.flight.Begin(req.kind)
	req.flight.Tau = req.tau
	req.flight.Proto = req.proto
	req.id = req.flight.ID

	// The gate reference is held until this handler returns; Shutdown
	// waits for all of them before stopping the workers.
	if !s.gate.enter() {
		s.met.drainRejects.Inc()
		req.flight.Outcome = obs.OutcomeShed
		req.flight.Err = "server is draining"
		rec := req.flight.Complete()
		s.reqlog.Log(rec)
		s.writeFail(w, proto, req.kind, rec.ID, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.gate.leave()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	// Past this point the executing side owns req.flight; the handler only
	// reads the plain req.id/req.kind copies (Complete recycles the handle,
	// so a handler touching it after handoff would race the next request).
	if s.batcher != nil && req.key != "" && !req.explain {
		s.batcher.submit(req)
	} else if !s.enqueue(&task{req: req}) {
		s.reject(req)
	}

	select {
	case res := <-req.done:
		s.writeResult(w, req, res)
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.met.timeouts.Inc()
			// The worker still owns the flight and files the full record
			// when it notices the dead context; this synthetic line keeps
			// the request log real-time from the handler's vantage.
			s.reqlog.Log(obs.RequestRecord{
				ID: req.id, Kind: req.kind, Tau: req.tau,
				Start:     req.enq,
				LatencyNS: time.Since(req.enq).Nanoseconds(),
				Outcome:   obs.OutcomeTimeout,
				Proto:     req.proto,
				Err:       "deadline exceeded (queued or executing)",
			})
			s.writeFail(w, proto, req.kind, req.id, http.StatusRequestTimeout,
				fmt.Sprintf("deadline exceeded after %s (queued or executing)", timeout))
		}
		// Client cancellation: nothing useful to write; the worker aborts
		// the query at its next page access.
	}
}

// writeResult renders a delivered result, attributing it to the right
// metrics by status and emitting the request-log line. Logging lives here —
// on the handler goroutine — rather than in the workers, so the executor hot
// loop never formats log output (the ucatlint hotlog check enforces that).
// The status is the request's logical status under either protocol; binary
// responses carry it in-band over a 200 transport.
func (s *Server) writeResult(w http.ResponseWriter, req *request, res result) {
	switch res.status {
	case http.StatusOK:
		total := time.Since(req.enq)
		s.met.completed.Inc()
		s.met.latency.Observe(uint64(total))
		if h := s.met.perKind[req.kind]; h != nil {
			h.Observe(uint64(total))
		}
	case http.StatusTooManyRequests:
		s.met.rejected.Inc()
		if req.proto != protoBinary {
			w.Header().Set("Retry-After", retryAfterHeader(s.cfg.RetryAfter))
		}
	case http.StatusRequestTimeout:
		s.met.timeouts.Inc()
	default:
		s.met.errors.Inc()
	}
	if res.rec.ID != 0 {
		s.reqlog.Log(res.rec)
	}
	if req.proto == protoBinary {
		s.writeBinary(w, res.status, &res.body)
		return
	}
	writeJSON(w, res.status, res.body)
}

// writeFail renders a handler-side failure (bad request, drain, timeout) in
// the negotiated protocol: a plain HTTP error document for JSON, an in-band
// error frame for binary.
func (s *Server) writeFail(w http.ResponseWriter, proto, kind string, traceID uint64, status int, msg string) {
	if proto == protoBinary {
		s.writeBinaryError(w, kind, traceID, status, msg)
		return
	}
	writeError(w, status, msg)
}

// decodeJSON reads and parses one JSON query document into an executable
// request.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request) (*request, int64, error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var qr QueryRequest
	if err := dec.Decode(&qr); err != nil {
		return nil, 0, fmt.Errorf("malformed request: %v", err)
	}
	req, err := parseRequest(&qr)
	if err != nil {
		return nil, 0, err
	}
	return req, qr.TimeoutMS, nil
}

// reject completes a request's flight as rejected and delivers the
// admission-queue-overflow answer. Callers (the handler on direct enqueue
// overflow, the batcher on dispatch overflow) own the flight at this point.
func (s *Server) reject(req *request) {
	const msg = "admission queue full; retry later"
	req.flight.Outcome = obs.OutcomeRejected
	req.flight.Err = msg
	rec := req.flight.Complete()
	req.deliver(result{
		status: http.StatusTooManyRequests,
		body:   QueryResponse{Kind: req.kind, TraceID: rec.ID, Error: msg},
		rec:    rec,
	})
}

// enqueue admits a task if the bounded queue has room.
func (s *Server) enqueue(t *task) bool {
	select {
	case s.queue <- t:
		s.met.queued.Add(1)
		return true
	default:
		return false
	}
}

// parseRequest validates the JSON wire request into an executable one.
func parseRequest(qr *QueryRequest) (*request, error) {
	q, err := cliutil.ParseUDA(qr.Query)
	if err != nil {
		return nil, fmt.Errorf("bad query distribution: %v", err)
	}
	req := &request{kind: qr.Kind, q: q, tau: qr.Tau, k: qr.K, c: qr.C, td: qr.TD,
		limit: qr.Limit, explain: qr.Explain}
	if qr.Kind == "dstq" || qr.Kind == "neighbor" {
		div := qr.Div
		if div == "" {
			div = "L1"
		}
		d, err := cliutil.ParseDivergence(div)
		if err != nil {
			return nil, err
		}
		req.div = d
	}
	if err := validateRequest(req); err != nil {
		return nil, err
	}
	return req, nil
}

// validateRequest applies the per-kind parameter rules shared by both
// protocols, fills parameter defaults, and computes the batch-compatibility
// key for the batchable kinds (petq, topk, window).
func validateRequest(req *request) error {
	if req.limit == 0 {
		req.limit = defaultAnswerLimit
	}
	if req.limit < 0 {
		return fmt.Errorf("negative limit %d", req.limit)
	}
	switch req.kind {
	case "petq":
		if req.tau < 0 || req.tau > 1 {
			return fmt.Errorf("petq: tau %g outside [0,1]", req.tau)
		}
		req.key = batchKey('p', 0, req.q)
	case "topk":
		if req.k <= 0 {
			return fmt.Errorf("topk: k must be positive, got %d", req.k)
		}
		req.key = batchKey('k', 0, req.q)
	case "window":
		if req.c == 0 {
			return fmt.Errorf("window: c must be positive (c=0 is plain petq)")
		}
		if req.tau < 0 || req.tau > 1 {
			return fmt.Errorf("window: tau %g outside [0,1]", req.tau)
		}
		req.key = batchKey('w', req.c, req.q)
	case "windowtopk":
		if req.c == 0 {
			return fmt.Errorf("windowtopk: c must be positive")
		}
		if req.k <= 0 {
			return fmt.Errorf("windowtopk: k must be positive, got %d", req.k)
		}
	case "dstq":
		if req.td < 0 {
			return fmt.Errorf("dstq: negative distance threshold %g", req.td)
		}
	case "neighbor":
		if req.k <= 0 {
			return fmt.Errorf("neighbor: k must be positive, got %d", req.k)
		}
	default:
		return fmt.Errorf("unknown query kind %q (want %s)",
			req.kind, strings.Join(queryKinds, "|"))
	}
	return nil
}

// batchKey is the micro-batcher's compatibility key: two probes of the same
// kind with bit-identical distributions — and, for window, the same window
// radius, since probabilities depend on it — may share one traversal
// (uda.New keeps pairs sorted by item, so the rendering is canonical). The
// kind tag keeps a petq and a topk over the same distribution apart.
func batchKey(kind byte, c uint32, q uda.UDA) string {
	pairs := q.Pairs()
	b := make([]byte, 0, 16+20*len(pairs))
	b = append(b, kind, '|')
	if c > 0 {
		b = strconv.AppendUint(b, uint64(c), 10)
		b = append(b, '|')
	}
	for _, p := range pairs {
		b = strconv.AppendUint(b, uint64(p.Item), 10)
		b = append(b, ':')
		b = strconv.AppendUint(b, math.Float64bits(p.Prob), 16)
		b = append(b, ';')
	}
	return string(b)
}

// worker is one query executor: it drains the admission queue until
// Shutdown, running every task through a fresh per-request Session over the
// server's shared pool (so hot pages are cached once, process-wide, while
// I/O attribution stays per-request).
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case t := <-s.queue:
			s.met.queued.Add(-1)
			if t.gate != nil {
				<-t.gate
			} else if t.batch != nil {
				s.executeBatch(t.batch)
			} else {
				s.executeOne(t.req)
			}
		case <-s.quit:
			return
		}
	}
}

// executeOne runs a single request through its own Session over the shared
// pool and delivers its result. The Session's local tally — not a delta on
// the shared pool, which would interleave every concurrent request — is the
// response's io document and the flight record's reads/hits. Span recording
// is always on (the flight recorder's pooled Recorder makes it allocation-
// free); the tree is dropped at Complete unless the request turns out
// notable or asked for EXPLAIN.
func (s *Server) executeOne(req *request) {
	wait := time.Since(req.enq)
	s.met.queueWait.Observe(uint64(wait))
	f := req.flight
	f.QueueNS = wait.Nanoseconds()
	if err := req.ctx.Err(); err != nil {
		req.deliver(s.completeFailure(req, err))
		return
	}
	ep, view, err := s.snapshot()
	if err != nil {
		req.deliver(s.completeFailure(req, err))
		return
	}
	sess := ep.pool.Session()
	rec := f.Recorder()
	eng := bindEngine(view, ep.rel.Reader(obs.InstrumentView(sess, rec)).WithContext(req.ctx))
	start := time.Now()
	var (
		ms []core.Match
		ns []core.Neighbor
	)
	// Goroutine labels make this request findable in /debug/pprof profiles:
	// a CPU sample taken while it runs carries its kind and trace ID.
	pprof.Do(req.ctx, pprof.Labels(
		"ucat_kind", req.kind,
		"ucat_req", strconv.FormatUint(f.ID, 10),
	), func(context.Context) {
		ms, ns, err = runKind(eng, rec, req)
	})
	elapsed := time.Since(start)
	delta := sess.Stats()
	s.met.readIOs.Add(delta.Reads)
	s.met.poolHits.Add(delta.Hits)
	f.Reads, f.Hits = delta.Reads, delta.Hits
	if err != nil {
		req.deliver(s.completeFailure(req, err))
		return
	}
	body := QueryResponse{Kind: req.kind, TraceID: f.ID,
		ElapsedNS: elapsed.Nanoseconds(), IO: wireIO(delta)}
	if req.kind == "dstq" || req.kind == "neighbor" {
		body.Count = len(ns)
		body.Neighbors, body.Truncated = truncNeighbors(ns, req.limit)
	} else {
		body.Count = len(ms)
		body.Matches, body.Truncated = truncMatches(ms, req.limit)
	}
	if req.explain {
		// Render before Complete: the recorder recycles its spans there.
		var sb strings.Builder
		if werr := rec.WriteTree(&sb); werr == nil {
			body.Explain = sb.String()
		}
	}
	f.Results = body.Count
	f.Outcome = obs.OutcomeOK
	frec := f.Complete()
	body.Slow = frec.Slow
	req.deliver(result{status: http.StatusOK, body: body, rec: frec})
}

// completeFailure classifies an execution error, completes the request's
// flight with the matching outcome, and returns the deliverable result.
func (s *Server) completeFailure(req *request, err error) result {
	res := failure(req.kind, err)
	f := req.flight
	switch {
	case errors.Is(err, context.Canceled):
		f.Outcome = obs.OutcomeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		f.Outcome = obs.OutcomeTimeout
	default:
		f.Outcome = obs.OutcomeError
	}
	f.Err = res.body.Error
	rec := f.Complete()
	res.body.TraceID = rec.ID
	res.rec = rec
	return res
}

// snapshot captures a consistent (epoch, live view) pair. On read-only
// servers the view is nil and the single epoch always matches. On live
// servers the epoch pointer and the live engine's state advance
// independently, so a fold between the two loads can leave the loaded epoch
// anchored at neither the current nor the previous generation; reloading
// closes the gap (one-generation history makes a second miss require two
// full folds inside this loop — retried, then surfaced as an error rather
// than spinning).
func (s *Server) snapshot() (*serveEpoch, *core.LiveView, error) {
	ep := s.epoch.Load()
	if s.live == nil {
		return ep, nil, nil
	}
	for try := 0; try < 4; try++ {
		if view, ok := s.live.ViewOn(ep.rel); ok {
			return ep, view, nil
		}
		ep = s.epoch.Load()
	}
	return nil, nil, fmt.Errorf("serving epoch churned during snapshot; retry")
}

// bindEngine attaches a live view to the epoch reader, or returns the reader
// itself on read-only servers (and, inside Bind, when the overlay is empty —
// the read path is then byte-for-byte the frozen one).
func bindEngine(view *core.LiveView, rd *core.Reader) core.QueryEngine {
	if view == nil {
		return rd
	}
	return view.Bind(rd)
}

// runKind dispatches to the engine method for the request's kind, under an
// explain root span when tracing is on (rec non-nil; StartSpan is nil-safe).
func runKind(rd core.QueryEngine, rec *obs.Recorder, req *request) ([]core.Match, []core.Neighbor, error) {
	sp := rec.StartSpan("serve." + req.kind)
	defer sp.End()
	switch req.kind {
	case "petq":
		ms, err := rd.PETQ(req.q, req.tau)
		return ms, nil, err
	case "topk":
		ms, err := rd.TopK(req.q, req.k)
		return ms, nil, err
	case "window":
		ms, err := rd.WindowPETQ(req.q, req.c, req.tau)
		return ms, nil, err
	case "windowtopk":
		ms, err := rd.WindowTopK(req.q, req.c, req.k)
		return ms, nil, err
	case "dstq":
		ns, err := rd.DSTQ(req.q, req.td, req.div)
		return nil, ns, err
	case "neighbor":
		ns, err := rd.DSTopK(req.q, req.k, req.div)
		return nil, ns, err
	default:
		return nil, nil, fmt.Errorf("unreachable: kind %q passed validation", req.kind)
	}
}

// failure classifies an execution error into a result.
func failure(kind string, err error) result {
	status := http.StatusInternalServerError
	msg := err.Error()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusRequestTimeout
		msg = "deadline exceeded during execution"
	case errors.Is(err, context.Canceled):
		// The client went away; the handler is no longer listening, but a
		// consistent result keeps the accounting simple.
		status = http.StatusRequestTimeout
		msg = "request cancelled"
	}
	return result{status: status, body: QueryResponse{Kind: kind, Error: msg}}
}

// wireIO renders a stats delta for the response document.
func wireIO(d pager.Stats) *WireIO {
	return &WireIO{Reads: d.Reads, Hits: d.Hits, IOs: d.IOs(), HitRate: d.HitRate()}
}

// truncMatches converts and bounds an answer list.
func truncMatches(ms []core.Match, limit int) ([]WireMatch, bool) {
	truncated := false
	if len(ms) > limit {
		ms = ms[:limit]
		truncated = true
	}
	out := make([]WireMatch, len(ms))
	for i, m := range ms {
		out[i] = WireMatch{TID: m.TID, Prob: m.Prob}
	}
	return out, truncated
}

// truncNeighbors converts and bounds a similarity answer list.
func truncNeighbors(ns []core.Neighbor, limit int) ([]WireNeighbor, bool) {
	truncated := false
	if len(ns) > limit {
		ns = ns[:limit]
		truncated = true
	}
	out := make([]WireNeighbor, len(ns))
	for i, n := range ns {
		out[i] = WireNeighbor{TID: n.TID, Dist: n.Dist}
	}
	return out, truncated
}

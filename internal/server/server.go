// Package server is ucat's network serving layer: a stdlib-only HTTP front
// end (cmd/ucatd) that carries the paper's probabilistic queries — PETQ,
// top-k, window equality, DSTQ and nearest-neighbor — to concurrent clients
// over a relation loaded read-only from a snapshot.
//
// The design composes the machinery earlier PRs built for the experiment
// harness into a production request path:
//
//	request → admission queue → (optional PETQ micro-batcher) → worker
//	        → pager.Session over the shared pool → core.Reader.WithContext → answer
//
// All workers share ONE large striped buffer pool over the relation's page
// store (DESIGN.md §18). Earlier revisions gave each worker a private
// 100-frame view, which duplicated the hot PDR-tree roots and upper
// inverted-index pages W times and capped the effective cache at
// frames × workers; the shared pool keeps each hot page resident once, with
// pin-safe concurrent access (a victim scan never evicts a pinned frame)
// and a pluggable eviction policy — CLOCK, strict LRU, or GDSF, which
// weights frames by decode cost so expensive index nodes outlive cheap heap
// pages. Per-request I/O is still accounted exactly: each request fetches
// through its own pager.Session, whose goroutine-local hit/miss tally is
// unaffected by concurrent requests on the same pool. The figures path
// (internal/exp, ucatbench) deliberately keeps per-query private pools so
// the paper's I/O counts stay bit-identical; the sharedpool lint check keeps
// private pools out of this package. Production concerns the CLI tools
// never needed live here:
//
//   - admission control: a bounded queue; overflow is rejected immediately
//     with 429 and a Retry-After hint instead of queueing without bound;
//   - deadlines: every request runs under a context deadline; cancellation
//     is checked at each page access, so a runaway scan stops at the next
//     fetch and the client gets 408;
//   - dual protocols: the same listener speaks JSON (debuggable, curl-able)
//     and ucatwire (internal/wire), a compact binary framing selected by
//     Content-Type whose response path is allocation-free in steady state —
//     pooled frame buffers, append-style encoders, no encoding/json and no
//     fmt (the wire-rooted ucatlint hotlog/hotalloc checks enforce that);
//   - micro-batching: compatible probes of the batchable kinds (petq, topk,
//     window — same kind and distribution, any threshold or k) arriving
//     within a small window coalesce into one index traversal at the widest
//     parameter, each waiter receiving its own bit-identical carved answer;
//   - graceful drain: Shutdown stops admitting, finishes every in-flight
//     request, then stops the workers;
//   - observability: per-endpoint latency, inflight, queue-wait and
//     rejection metrics in the obs registry, the obs debug endpoints
//     (/metrics, /debug/pprof, …) on the same listener, and optional
//     per-request EXPLAIN span trees.
//
// The relation is strictly read-only: the server never mutates it, so the
// counted-fetch-before-cache invariant (DESIGN.md §15) holds per request
// exactly as in the sequential harness.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ucat/internal/core"
	"ucat/internal/dcache"
	"ucat/internal/obs"
	"ucat/internal/pager"
)

// Config configures a Server. The zero value of every field except Relation
// picks a sensible default, documented per field.
type Config struct {
	// Relation is the read-only relation to serve. Required unless Live is
	// set. The server never mutates it; callers must not mutate it while the
	// server runs.
	Relation *core.Relation

	// Live, when set, enables the durable write path: POST /v1/ingest
	// accepts inserts, updates, and deletes, acknowledged only after the WAL
	// fsync (DURABILITY.md §4), and queries answer over the live view —
	// base epoch plus the committed delta (§5). The server installs itself
	// as the fold callback (Live.SetOnSwap): after each checkpoint it builds
	// a fresh shared pool over the new base and swaps both in atomically,
	// so in-flight queries finish on the epoch they started on. Relation
	// defaults to Live.Base(). nil serves read-only, exactly as before.
	Live *core.Live

	// Workers is the number of query-executor goroutines, all sharing the
	// server's one buffer pool. 0 means GOMAXPROCS.
	Workers int

	// QueueDepth bounds the admission queue. A request arriving when the
	// queue is full is rejected with 429 and a Retry-After hint.
	// 0 means 64.
	QueueDepth int

	// PoolFrames sizes the shared buffer pool, TOTAL across all workers —
	// not per worker, as before the shared-pool refactor (ucatd's -frames
	// flag changed meaning with it; see OPERATIONS.md §8). 0 means
	// Workers × pager.DefaultPoolFrames, the same total memory the old
	// per-worker default used.
	PoolFrames int

	// PoolStripes is the shared pool's lock-stripe count. More stripes mean
	// less mutex contention between workers fetching distinct pages, at the
	// cost of slightly less global replacement. 0 means 2 × Workers, clamped
	// to [1, 16].
	PoolStripes int

	// PoolPolicy selects the shared pool's eviction policy: "clock" (the
	// paper's second chance), "lru" (strict LRU), or "gdsf" (greedy-dual
	// size-frequency, weighting frames by decode cost — see DESIGN.md §18
	// and BENCH_pool.json for the comparison). "" means clock.
	PoolPolicy string

	// DefaultTimeout bounds requests that carry no timeout_ms of their own.
	// 0 means 2s.
	DefaultTimeout time.Duration

	// MaxTimeout caps client-requested deadlines. 0 means 30s.
	MaxTimeout time.Duration

	// BatchWindow is the micro-batching window for the batchable kinds
	// (petq, topk, window): compatible probes arriving within it coalesce
	// into one index traversal. 0 disables the batcher (the default —
	// batching trades a little latency for throughput and should be an
	// explicit choice).
	BatchWindow time.Duration

	// BatchMax caps how many probes one traversal may serve. 0 means 16.
	BatchMax int

	// RetryAfter is the hint attached to 429 responses. 0 means 1s.
	RetryAfter time.Duration

	// Registry receives the server's metrics and backs the mounted debug
	// endpoints. nil means obs.Default.
	Registry *obs.Registry

	// FlightRecords bounds the flight recorder's main last-N ring (the
	// recorder itself is always on). 0 means the obs default (512).
	FlightRecords int

	// SlowThreshold is the flight recorder's tail-sampling rule: 0 means
	// self-tuning (per-kind trailing p99); > 0 is a fixed cutoff; < 0 keeps
	// every request's span tree (ucatd's -slowms 0, for smoke tests).
	SlowThreshold time.Duration

	// Logger receives the structured request log (one slog line per
	// completed request, sampled per LogSample). nil disables request
	// logging entirely.
	Logger *slog.Logger

	// LogSample is the request log's success sampling rate: ordinary
	// successes log 1-in-LogSample, while errors and slow requests always
	// log. 0 means 16; negative drops ordinary successes entirely.
	LogSample int
}

// withDefaults returns cfg with every zero field replaced by its default.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.PoolFrames <= 0 {
		cfg.PoolFrames = cfg.Workers * pager.DefaultPoolFrames
	}
	if cfg.PoolStripes <= 0 {
		cfg.PoolStripes = 2 * cfg.Workers
		if cfg.PoolStripes > 16 {
			cfg.PoolStripes = 16
		}
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 16
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.LogSample == 0 {
		cfg.LogSample = 16
	}
	return cfg
}

// Server is the HTTP query server. Create one with New, mount it (it
// implements http.Handler), and stop it with Shutdown. All exported methods
// are safe for concurrent use.
// serveEpoch is one generation of the serving state: a base relation and the
// shared hot-page pool built over its store. Read-only servers have exactly
// one for their whole life; live servers swap in a new one at each fold
// (queries in flight keep the epoch they loaded — the old pool stays valid
// until the last reference drops).
type serveEpoch struct {
	rel  *core.Relation
	pool *pager.Pool
}

// Server is the HTTP query engine: an http.Handler owning the worker pool,
// admission queue, micro-batcher, metrics, and — on live servers — the
// durable write path and the serving-epoch swap that follows each fold.
type Server struct {
	cfg       Config
	live      *core.Live                 // nil on read-only servers
	epoch     atomic.Pointer[serveEpoch] // current (rel, pool) generation
	mux       *http.ServeMux
	queue     chan *task
	quit      chan struct{} // closed after drain; releases the workers
	batcher   *batcher      // nil when BatchWindow is 0
	met       *metrics
	flight    *obs.FlightRecorder // always-on request flight recorder
	reqlog    *obs.RequestLogger  // nil when Config.Logger is nil
	start     time.Time
	retrySecs int // cfg.RetryAfter in whole seconds, for in-band binary hints
	draining  atomic.Bool
	gate      *drainGate // tracks admitted requests not yet answered
	workers   sync.WaitGroup
	shutdown  sync.Once
	done      chan struct{} // closed when every worker has exited
}

// New builds a Server over a read-only relation and starts its worker pool.
// The returned server is ready to serve; callers typically hand it to
// http.Server as the handler.
func New(cfg Config) (*Server, error) {
	if cfg.Relation == nil && cfg.Live != nil {
		cfg.Relation = cfg.Live.Base()
	}
	if cfg.Relation == nil {
		return nil, fmt.Errorf("server: Config.Relation is required")
	}
	cfg = cfg.withDefaults()
	policy, err := pager.ParsePolicy(cfg.PoolPolicy)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		live:  cfg.Live,
		mux:   http.NewServeMux(),
		queue: make(chan *task, cfg.QueueDepth),
		quit:  make(chan struct{}),
		gate:  newDrainGate(),
		met:   newMetrics(cfg.Registry),
		start: time.Now(),
		done:  make(chan struct{}),
	}
	ep, err := s.buildEpoch(cfg.Relation, policy)
	if err != nil {
		return nil, err
	}
	s.epoch.Store(ep)
	if s.live != nil {
		s.met.registerIngestGauges(cfg.Registry, s.live)
		// After each fold, serve the next epoch: new base, fresh shared pool
		// over its store. Failures keep the old epoch serving — the live view
		// still answers correctly through it via ViewOn's previous-generation
		// fallback until the next fold retries.
		s.live.SetOnSwap(func(next *core.Relation) {
			if nep, err := s.buildEpoch(next, policy); err == nil {
				s.epoch.Store(nep)
			}
		})
	}
	s.retrySecs = int(retryAfterSeconds(cfg.RetryAfter))
	registerPoolMetrics(cfg.Registry, func() *pager.Pool { return s.epoch.Load().pool })
	s.flight = obs.NewFlightRecorder(obs.FlightConfig{
		Records:       cfg.FlightRecords,
		SlowThreshold: cfg.SlowThreshold,
		Registry:      cfg.Registry,
		MetricsPrefix: "ucat_serve_flight",
	})
	s.reqlog = obs.NewRequestLogger(cfg.Logger, cfg.LogSample)
	if cfg.BatchWindow > 0 {
		s.batcher = newBatcher(s, cfg.BatchWindow, cfg.BatchMax)
	}
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/version", obs.BuildHandler)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	obs.RegisterDebug(s.mux, cfg.Registry)
	obs.RegisterFlight(s.mux, s.flight)

	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	go func() {
		s.workers.Wait()
		close(s.done)
	}()
	return s, nil
}

// buildEpoch assembles one serving generation: flush the relation's own
// construction pool, build the shared pool over its store (with GDSF decode
// costs when selected), and grow the decoded-object cache to match.
func (s *Server) buildEpoch(rel *core.Relation, policy pager.Policy) (*serveEpoch, error) {
	// Dirty construction-pool pages must reach the store before the shared
	// pool reads it (same discipline as EXPLAIN's fresh view).
	if err := rel.Pool().FlushAll(); err != nil {
		return nil, fmt.Errorf("server: flushing relation before serving: %w", err)
	}
	pool := pager.NewSharedPool(rel.Pool().Store(), s.cfg.PoolFrames, s.cfg.PoolStripes, policy)
	if policy == pager.GDSF {
		pool.SetCostFunc(rel.PageCostFunc())
	}
	// Keep the decoded-object cache coherent with the page pool: a pool that
	// holds thousands of pages hot is wasted if their decoded forms still
	// thrash the default 8 MB budget. Grow-only, so an operator-chosen
	// larger budget is never shrunk.
	if dc := rel.DecodeCache(); dc != nil {
		if want := dcache.SizeForFrames(s.cfg.PoolFrames); want > dc.MaxBytes() {
			dc.Resize(want)
		}
	}
	return &serveEpoch{rel: rel, pool: pool}, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Draining reports whether the server has begun shutting down (new queries
// are being refused with 503).
func (s *Server) Draining() bool { return s.draining.Load() }

// Flight returns the server's request flight recorder — the source behind
// /debug/requests, exposed for tests and embedding callers.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// PoolDescription is a one-line human-readable summary of the shared pool's
// effective configuration, for startup logs.
func (s *Server) PoolDescription() string {
	pool := s.epoch.Load().pool
	return fmt.Sprintf("%s, %d frames, %d stripes",
		pool.Policy(), pool.Frames(), pool.Shards())
}

// Shutdown drains the server: it stops admitting queries (503), waits for
// every in-flight request to complete, then stops the worker pool. It
// returns ctx.Err() if the context expires first; the drain keeps making
// progress in the background regardless. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdown.Do(func() {
		s.draining.Store(true)
		go func() {
			// Every admitted request holds a gate reference until its
			// handler returns, and the gate refuses new entries once
			// closed — so after drain nothing new reaches the queue and
			// the workers can be released. The queue channel itself is
			// never closed: a straggling batch-timer flush may still
			// attempt a send, which must fail cleanly (draining check)
			// rather than panic on a closed channel.
			s.gate.drain()
			close(s.quit)
		}()
	})
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleHealthz answers liveness probes: 200 while serving, 503 once
// draining so load balancers stop routing here during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.httpHealthz.Inc()
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	ep := s.epoch.Load()
	doc := map[string]any{
		"status":    state,
		"kind":      ep.rel.Kind().String(),
		"tuples":    s.tupleCount(ep),
		"uptime_ms": time.Since(s.start).Milliseconds(),
	}
	if s.live != nil {
		doc["mode"] = "live"
		doc["epoch"] = s.live.Epoch()
	}
	writeJSON(w, status, doc)
}

// statsPayload is the /v1/stats response document.
type statsPayload struct {
	UptimeMS int64         `json:"uptime_ms"`
	Relation relationStats `json:"relation"`
	Config   configStats   `json:"config"`
	Live     liveStats     `json:"live"`
	Totals   totalStats    `json:"totals"`
	Pool     poolStats     `json:"pool"`
	Latency  latencyStats  `json:"latency"`
	Ingest   *ingestStats  `json:"ingest,omitempty"` // live servers only
}

// relationStats describes the served relation.
type relationStats struct {
	Kind   string `json:"kind"`
	Tuples int    `json:"tuples"`
}

// configStats echoes the effective serving configuration. PoolFrames is the
// shared pool's TOTAL capacity (see Config.PoolFrames).
type configStats struct {
	Workers          int    `json:"workers"`
	QueueDepth       int    `json:"queue_depth"`
	PoolFrames       int    `json:"pool_frames"`
	PoolStripes      int    `json:"pool_stripes"`
	PoolPolicy       string `json:"pool_policy"`
	DefaultTimeoutMS int64  `json:"default_timeout_ms"`
	MaxTimeoutMS     int64  `json:"max_timeout_ms"`
	BatchWindowUS    int64  `json:"batch_window_us"`
	BatchMax         int    `json:"batch_max"`
}

// poolStats is the shared buffer pool's health picture: lifetime totals from
// the pool's own counters (NOT per-request deltas — those are in
// totals.read_ios/pool_hits) plus instantaneous occupancy. hit_rate here is
// the pool-wide Hits/(Hits+Reads) since boot; per-request hit rates ride on
// each /v1/query response's io document.
type poolStats struct {
	Policy    string  `json:"policy"`
	Frames    int     `json:"frames"`
	Stripes   int     `json:"stripes"`
	Occupancy int     `json:"occupancy"`
	Pinned    int64   `json:"pinned"`
	Reads     uint64  `json:"reads"`
	Writes    uint64  `json:"writes"`
	Hits      uint64  `json:"hits"`
	HitRate   float64 `json:"hit_rate"`
	Evictions uint64  `json:"evictions"`
}

// liveStats is the instantaneous load picture.
type liveStats struct {
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Draining bool  `json:"draining"`
}

// totalStats is the monotonic request accounting since boot.
type totalStats struct {
	Requests     uint64 `json:"requests"`
	JSONReqs     uint64 `json:"json_requests"`
	BinaryReqs   uint64 `json:"binary_requests"`
	Completed    uint64 `json:"completed"`
	Rejected     uint64 `json:"rejected"`
	Timeouts     uint64 `json:"timeouts"`
	BadRequests  uint64 `json:"bad_requests"`
	Errors       uint64 `json:"errors"`
	Draining     uint64 `json:"draining_rejects"`
	BatchLeaders uint64 `json:"batch_leaders"`
	BatchJoined  uint64 `json:"batch_joined"`
	ReadIOs      uint64 `json:"read_ios"`
	PoolHits     uint64 `json:"pool_hits"`
}

// ingestStats is the live write path's health picture (live servers only):
// request totals from the server's counters plus the engine's instantaneous
// state — delta size, fold epoch, and the WAL's LSN/fsync accounting.
type ingestStats struct {
	Requests uint64           `json:"requests"`
	Errors   uint64           `json:"errors"`
	Rejected uint64           `json:"rejected"`
	DeltaOps int              `json:"delta_ops"`
	Epoch    uint64           `json:"epoch"`
	Tuples   int              `json:"tuples"`
	WAL      walStats         `json:"wal"`
	Latency  obs.HistSnapshot `json:"latency_ns"`
}

// walStats mirrors wal.Stats for the JSON document.
type walStats struct {
	AppendedLSN uint64 `json:"appended_lsn"`
	DurableLSN  uint64 `json:"durable_lsn"`
	Records     uint64 `json:"records"`
	Bytes       uint64 `json:"bytes"`
	Fsyncs      uint64 `json:"fsyncs"`
	SyncCalls   uint64 `json:"sync_calls"`
	Rotations   uint64 `json:"rotations"`
	Segments    int64  `json:"segments"`
}

// ingestSnapshot assembles the /v1/stats ingest section, nil on read-only
// servers (the JSON field is omitted entirely).
func (s *Server) ingestSnapshot() *ingestStats {
	if s.live == nil {
		return nil
	}
	w := s.live.WAL().Stats()
	return &ingestStats{
		Requests: s.met.ingestRequests.Value(),
		Errors:   s.met.ingestErrors.Value(),
		Rejected: s.met.ingestRejected.Value(),
		DeltaOps: s.live.DeltaLen(),
		Epoch:    s.live.Epoch(),
		Tuples:   s.live.Len(),
		WAL: walStats{
			AppendedLSN: w.AppendedLSN,
			DurableLSN:  w.DurableLSN,
			Records:     w.Records,
			Bytes:       w.Bytes,
			Fsyncs:      w.Fsyncs,
			SyncCalls:   w.SyncCalls,
			Rotations:   w.Rotations,
			Segments:    w.Segments,
		},
		Latency: s.met.ingestLatency.Snapshot(),
	}
}

// latencyStats carries the nearest-rank quantile estimates of the server's
// log₂ latency histograms, in nanoseconds.
type latencyStats struct {
	Query     obs.HistSnapshot            `json:"query_ns"`
	QueueWait obs.HistSnapshot            `json:"queue_wait_ns"`
	PerKind   map[string]obs.HistSnapshot `json:"per_kind_ns"`
}

// handleStats serves the JSON operational snapshot at /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.met.httpStats.Inc()
	perKind := make(map[string]obs.HistSnapshot, len(s.met.perKind))
	for kind, h := range s.met.perKind {
		if snap := h.Snapshot(); snap.Count > 0 {
			perKind[kind] = snap
		}
	}
	ep := s.epoch.Load()
	writeJSON(w, http.StatusOK, statsPayload{
		UptimeMS: time.Since(s.start).Milliseconds(),
		Relation: relationStats{Kind: ep.rel.Kind().String(), Tuples: s.tupleCount(ep)},
		Config: configStats{
			Workers:          s.cfg.Workers,
			QueueDepth:       s.cfg.QueueDepth,
			PoolFrames:       s.cfg.PoolFrames,
			PoolStripes:      s.cfg.PoolStripes,
			PoolPolicy:       ep.pool.Policy().String(),
			DefaultTimeoutMS: s.cfg.DefaultTimeout.Milliseconds(),
			MaxTimeoutMS:     s.cfg.MaxTimeout.Milliseconds(),
			BatchWindowUS:    s.cfg.BatchWindow.Microseconds(),
			BatchMax:         s.cfg.BatchMax,
		},
		Ingest: s.ingestSnapshot(),
		Live: liveStats{
			Inflight: s.met.inflight.Value(),
			Queued:   s.met.queued.Value(),
			Draining: s.draining.Load(),
		},
		Totals: totalStats{
			Requests:     s.met.requests.Value(),
			JSONReqs:     s.met.protoRequests[protoJSON].Value(),
			BinaryReqs:   s.met.protoRequests[protoBinary].Value(),
			Completed:    s.met.completed.Value(),
			Rejected:     s.met.rejected.Value(),
			Timeouts:     s.met.timeouts.Value(),
			BadRequests:  s.met.badRequests.Value(),
			Errors:       s.met.errors.Value(),
			Draining:     s.met.drainRejects.Value(),
			BatchLeaders: s.met.batchLeaders.Value(),
			BatchJoined:  s.met.batchJoined.Value(),
			ReadIOs:      s.met.readIOs.Value(),
			PoolHits:     s.met.poolHits.Value(),
		},
		Pool: poolSnapshot(ep.pool),
		Latency: latencyStats{
			Query:     s.met.latency.Snapshot(),
			QueueWait: s.met.queueWait.Snapshot(),
			PerKind:   perKind,
		},
	})
}

// poolSnapshot assembles the /v1/stats pool section from the current epoch's
// shared pool counters. On live servers these reset at each fold (the pool is
// rebuilt over the new base); the lifetime view is in the metrics registry.
func poolSnapshot(pool *pager.Pool) poolStats {
	st := pool.Stats()
	return poolStats{
		Policy:    pool.Policy().String(),
		Frames:    pool.Frames(),
		Stripes:   pool.Shards(),
		Occupancy: pool.CachedPages(),
		Pinned:    pool.Pins(),
		Reads:     st.Reads,
		Writes:    st.Writes,
		Hits:      st.Hits,
		HitRate:   st.HitRate(),
		Evictions: pool.Evictions(),
	}
}

// tupleCount is the serving tuple count: the live view's on live servers
// (base plus visible delta), the relation's otherwise.
func (s *Server) tupleCount(ep *serveEpoch) int {
	if s.live != nil {
		return s.live.Len()
	}
	return ep.rel.Len()
}

// drainGate counts admitted requests and lets Shutdown wait for all of them
// while refusing newcomers — the Add/Wait protocol a bare WaitGroup cannot
// express racelessly when entries and the drain overlap.
type drainGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int  // requests currently inside
	closed bool // no further entries
}

// newDrainGate returns an open gate.
func newDrainGate() *drainGate {
	g := &drainGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// enter admits the caller unless the gate has closed. Every successful enter
// must be paired with leave.
func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.n++
	return true
}

// leave releases one admission.
func (g *drainGate) leave() {
	g.mu.Lock()
	g.n--
	if g.n == 0 && g.closed {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// drain closes the gate and blocks until everyone inside has left.
func (g *drainGate) drain() {
	g.mu.Lock()
	g.closed = true
	for g.n > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// writeJSON writes one JSON document with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already out; an encode error here means the client
	// went away, which the next request-level read would surface anyway.
	_ = enc.Encode(v)
}

// writeError writes the uniform error document {"error": msg}.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// retryAfterSeconds converts the Retry-After hint to whole seconds, rounding
// up so "1ns" never becomes 0.
func retryAfterSeconds(d time.Duration) int64 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// retryAfterHeader formats the Retry-After hint for the JSON protocol's
// response header; the binary protocol carries the same value in-band.
func retryAfterHeader(d time.Duration) string {
	return strconv.FormatInt(retryAfterSeconds(d), 10)
}

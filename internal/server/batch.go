package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"ucat/internal/uda"
)

// batcher coalesces compatible PETQ probes into one index traversal. Two
// probes are compatible when they carry the same query distribution (after
// uda.New's canonical item ordering); their thresholds may differ. The
// batcher holds an open batch per distribution for at most the configured
// window, then flushes it onto the admission queue as a single task. The
// leader traversal runs at the minimum tau across its waiters, and every
// waiter receives the prefix of the descending-probability answer that
// clears its own threshold — bit-identical to what a direct PETQ returns.
type batcher struct {
	s      *Server
	window time.Duration
	max    int

	mu   sync.Mutex
	open map[string]*batch
}

// batch is one coalesced traversal in the making: the shared query
// distribution plus every request waiting on its answer.
type batch struct {
	key     string
	q       uda.UDA
	waiters []*request
}

// newBatcher returns a batcher bound to s with the given coalescing window
// and maximum batch size.
func newBatcher(s *Server, window time.Duration, max int) *batcher {
	return &batcher{
		s:      s,
		window: window,
		max:    max,
		open:   make(map[string]*batch),
	}
}

// submit adds req to the open batch for its distribution, creating one (and
// arming its flush timer) if none is open. A batch that reaches the maximum
// size flushes immediately rather than waiting out the window.
func (b *batcher) submit(req *request) {
	b.mu.Lock()
	bt, ok := b.open[req.key]
	if ok {
		bt.waiters = append(bt.waiters, req)
		full := len(bt.waiters) >= b.max
		if full {
			delete(b.open, req.key)
		}
		b.mu.Unlock()
		b.s.met.batchJoined.Inc()
		if full {
			b.dispatch(bt)
		}
		return
	}
	bt = &batch{key: req.key, q: req.q, waiters: []*request{req}}
	b.open[req.key] = bt
	b.mu.Unlock()

	time.AfterFunc(b.window, func() { b.flush(req.key, bt) })
}

// flush closes the window on bt: if it is still the open batch for its key
// it is removed from the table and dispatched. A batch already flushed by
// the size trigger is left alone (the pointer comparison guards against a
// newer batch reusing the key).
func (b *batcher) flush(key string, bt *batch) {
	b.mu.Lock()
	cur, ok := b.open[key]
	if !ok || cur != bt {
		b.mu.Unlock()
		return
	}
	delete(b.open, key)
	b.mu.Unlock()
	b.dispatch(bt)
}

// dispatch hands a closed batch to the admission queue. If the server is
// draining or the queue is full, every waiter is rejected the same way a
// direct enqueue overflow would have been.
func (b *batcher) dispatch(bt *batch) {
	b.s.met.batchLeaders.Inc()
	if b.s.draining.Load() || !b.s.enqueue(&task{batch: bt}) {
		for _, w := range bt.waiters {
			b.s.reject(w)
		}
	}
}

// executeBatch runs one coalesced PETQ traversal through a fresh Session
// over the shared pool and fans the answer out to every waiter.
func (s *Server) executeBatch(bt *batch) {
	now := time.Now()
	minTau := bt.waiters[0].tau
	var deadline time.Time
	for _, w := range bt.waiters {
		s.met.queueWait.Observe(uint64(now.Sub(w.enq)))
		if w.tau < minTau {
			minTau = w.tau
		}
		if d, ok := w.ctx.Deadline(); ok && d.After(deadline) {
			deadline = d
		}
	}

	// The traversal context is detached from any single waiter: one client
	// cancelling must not kill the shared work. The latest waiter deadline
	// still bounds it.
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if !deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, deadline)
	}
	defer cancel()

	sess := s.pool.Session()
	rd := s.rel.Reader(sess).WithContext(ctx)
	matches, err := rd.PETQ(bt.q, minTau)
	elapsed := time.Since(now)
	delta := sess.Stats()
	s.met.readIOs.Add(delta.Reads)
	s.met.poolHits.Add(delta.Hits)

	if err != nil {
		for _, w := range bt.waiters {
			w.deliver(failure(w.kind, err))
		}
		return
	}

	// Matches come back sorted descending by probability, so each waiter's
	// answer is the prefix that clears its own tau.
	for _, w := range bt.waiters {
		cut := len(matches)
		for i, m := range matches {
			if !(m.Prob > w.tau) {
				cut = i
				break
			}
		}
		mine := matches[:cut]
		wire, truncated := truncMatches(mine, w.limit)
		w.deliver(result{status: http.StatusOK, body: QueryResponse{
			Kind:      w.kind,
			Count:     len(mine),
			Truncated: truncated,
			Matches:   wire,
			IO:        wireIO(delta),
			ElapsedNS: elapsed.Nanoseconds(),
			Batched:   true,
			BatchSize: len(bt.waiters),
		}})
	}
}

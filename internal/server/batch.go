package server

import (
	"context"
	"net/http"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/uda"
)

// batcher coalesces compatible probes of the batchable kinds — petq, topk,
// and window — into one index traversal. Two probes are compatible when they
// share a kind and a bit-identical query distribution (after uda.New's
// canonical item ordering), plus the same window radius c for window probes
// (the window probabilities depend on c, so differing radii cannot share a
// traversal); their thresholds or k values may differ. The batcher holds an
// open batch per compatibility key for at most the configured window, then
// flushes it onto the admission queue as a single task.
//
// The shared traversal runs at the widest parameter across its waiters —
// minimum tau for petq/window, maximum k for topk — and every waiter's
// answer is carved from the canonically-ordered result: the prefix clearing
// its own tau, or its own first k entries. SortMatches' total order (prob
// descending, tid ascending) makes both carvings bit-identical to direct
// execution; riders keep their own trace IDs and flight records.
type batcher struct {
	s      *Server
	window time.Duration
	max    int

	mu   sync.Mutex
	open map[string]*batch
}

// batch is one coalesced traversal in the making: the shared kind, query
// distribution and window radius, plus every request waiting on its answer.
type batch struct {
	key     string
	kind    string
	q       uda.UDA
	c       uint32 // window radius; meaningful only for kind "window"
	waiters []*request
}

// newBatcher returns a batcher bound to s with the given coalescing window
// and maximum batch size.
func newBatcher(s *Server, window time.Duration, max int) *batcher {
	return &batcher{
		s:      s,
		window: window,
		max:    max,
		open:   make(map[string]*batch),
	}
}

// submit adds req to the open batch for its distribution, creating one (and
// arming its flush timer) if none is open. A batch that reaches the maximum
// size flushes immediately rather than waiting out the window.
func (b *batcher) submit(req *request) {
	b.mu.Lock()
	bt, ok := b.open[req.key]
	if ok {
		bt.waiters = append(bt.waiters, req)
		full := len(bt.waiters) >= b.max
		if full {
			delete(b.open, req.key)
		}
		b.mu.Unlock()
		b.s.met.batchJoined.Inc()
		if full {
			b.dispatch(bt)
		}
		return
	}
	bt = &batch{key: req.key, kind: req.kind, q: req.q, c: req.c, waiters: []*request{req}}
	b.open[req.key] = bt
	b.mu.Unlock()

	time.AfterFunc(b.window, func() { b.flush(req.key, bt) })
}

// flush closes the window on bt: if it is still the open batch for its key
// it is removed from the table and dispatched. A batch already flushed by
// the size trigger is left alone (the pointer comparison guards against a
// newer batch reusing the key).
func (b *batcher) flush(key string, bt *batch) {
	b.mu.Lock()
	cur, ok := b.open[key]
	if !ok || cur != bt {
		b.mu.Unlock()
		return
	}
	delete(b.open, key)
	b.mu.Unlock()
	b.dispatch(bt)
}

// dispatch hands a closed batch to the admission queue. If the server is
// draining or the queue is full, every waiter is rejected the same way a
// direct enqueue overflow would have been.
func (b *batcher) dispatch(bt *batch) {
	b.s.met.batchLeaders.Inc()
	if b.s.draining.Load() || !b.s.enqueue(&task{batch: bt}) {
		for _, w := range bt.waiters {
			b.s.reject(w)
		}
	}
}

// executeBatch runs one coalesced traversal through a fresh Session over the
// shared pool and fans the answer out to every waiter. The traversal records
// its spans on the LEADER's (first waiter's) flight recorder; if any waiter
// turns out notable the tree is rendered once and every waiter's flight
// record inherits it under its own trace ID — a rider that was slow explains
// itself with the traversal that actually ran.
func (s *Server) executeBatch(bt *batch) {
	now := time.Now()
	minTau := bt.waiters[0].tau
	maxK := bt.waiters[0].k
	var deadline time.Time
	for _, w := range bt.waiters {
		wait := now.Sub(w.enq)
		s.met.queueWait.Observe(uint64(wait))
		w.flight.QueueNS = wait.Nanoseconds()
		if w.tau < minTau {
			minTau = w.tau
		}
		if w.k > maxK {
			maxK = w.k
		}
		if d, ok := w.ctx.Deadline(); ok && d.After(deadline) {
			deadline = d
		}
	}

	// The traversal context is detached from any single waiter: one client
	// cancelling must not kill the shared work. The latest waiter deadline
	// still bounds it.
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if !deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, deadline)
	}
	defer cancel()

	lead := bt.waiters[0].flight
	rec := lead.Recorder()
	ep, view, err := s.snapshot()
	if err != nil {
		for _, w := range bt.waiters {
			w.deliver(s.completeFailure(w, err))
		}
		return
	}
	sess := ep.pool.Session()
	eng := bindEngine(view, ep.rel.Reader(obs.InstrumentView(sess, rec)).WithContext(ctx))
	var matches []core.Match
	pprof.Do(ctx, pprof.Labels(
		"ucat_kind", bt.kind,
		"ucat_req", strconv.FormatUint(lead.ID, 10),
	), func(context.Context) {
		matches, err = runBatchTraversal(eng, rec, bt, minTau, maxK)
	})
	elapsed := time.Since(now)
	delta := sess.Stats()
	s.met.readIOs.Add(delta.Reads)
	s.met.poolHits.Add(delta.Hits)

	// Fix each waiter's latency now so the keep-the-tree decision below and
	// Complete's slow classification agree (Complete honors a pre-set
	// latency). Render the tree once iff anyone will be notable.
	thrNS := s.flight.SlowThreshold(bt.kind).Nanoseconds()
	needTree := err != nil
	for _, w := range bt.waiters {
		f := w.flight
		f.LatencyNS = time.Since(w.enq).Nanoseconds()
		if f.LatencyNS >= thrNS {
			needTree = true
		}
	}
	var tree string
	if needTree {
		var sb strings.Builder
		if werr := rec.WriteTree(&sb); werr == nil {
			tree = sb.String()
		}
	}
	for i, w := range bt.waiters {
		f := w.flight
		f.Reads, f.Hits = delta.Reads, delta.Hits
		f.BatchSize = len(bt.waiters)
		if i == 0 {
			f.Batch = "leader"
		} else {
			f.Batch = "rider"
		}
		f.Tree = tree
	}

	if err != nil {
		for _, w := range bt.waiters {
			w.deliver(s.completeFailure(w, err))
		}
		return
	}

	// Matches come back in the canonical total order (probability descending,
	// tie-break tid ascending), so each waiter's exact answer is a prefix:
	// for the threshold kinds the prefix clearing its own tau, for topk its
	// own first k entries (TopK(maxK) truncated to k IS TopK(k) under a
	// strict total order).
	for _, w := range bt.waiters {
		var mine []core.Match
		if bt.kind == "topk" {
			n := w.k
			if n > len(matches) {
				n = len(matches)
			}
			mine = matches[:n]
		} else {
			cut := len(matches)
			for i, m := range matches {
				if !(m.Prob > w.tau) {
					cut = i
					break
				}
			}
			mine = matches[:cut]
		}
		wire, truncated := truncMatches(mine, w.limit)
		f := w.flight
		f.Results = len(mine)
		f.Outcome = obs.OutcomeOK
		frec := f.Complete()
		w.deliver(result{status: http.StatusOK, body: QueryResponse{
			Kind:      w.kind,
			TraceID:   frec.ID,
			Count:     len(mine),
			Truncated: truncated,
			Matches:   wire,
			IO:        wireIO(delta),
			ElapsedNS: elapsed.Nanoseconds(),
			Batched:   true,
			BatchSize: len(bt.waiters),
			Slow:      frec.Slow,
		}, rec: frec})
	}
}

// runBatchTraversal executes the coalesced traversal under its own span on
// the leader's recorder (ended on return, so the rendered tree has a real
// duration), dispatching on the batch's kind.
func runBatchTraversal(rd core.QueryEngine, rec *obs.Recorder, bt *batch, minTau float64, maxK int) ([]core.Match, error) {
	sp := rec.StartSpan("serve." + bt.kind + ".batch")
	defer sp.End()
	sp.AttrF("waiters", float64(len(bt.waiters)))
	switch bt.kind {
	case "topk":
		sp.AttrF("k_max", float64(maxK))
		return rd.TopK(bt.q, maxK)
	case "window":
		sp.AttrF("tau_min", minTau)
		return rd.WindowPETQ(bt.q, bt.c, minTau)
	default: // petq
		sp.AttrF("tau_min", minTau)
		return rd.PETQ(bt.q, minTau)
	}
}

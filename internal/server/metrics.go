package server

import "ucat/internal/obs"

// metrics holds direct pointers into the registry for every counter the hot
// path touches, so recording a request never takes the registry's lookup
// lock. The names below are the server's /metrics contract; OPERATIONS.md
// documents each one.
type metrics struct {
	// Request accounting on POST /v1/query.
	requests     *obs.Counter // ucat_serve_requests_total — every query request received
	completed    *obs.Counter // ucat_serve_completed_total — answered 200
	rejected     *obs.Counter // ucat_serve_rejected_total — admission queue full (429)
	timeouts     *obs.Counter // ucat_serve_timeouts_total — deadline hit (408)
	badRequests  *obs.Counter // ucat_serve_bad_requests_total — malformed / invalid (400)
	errors       *obs.Counter // ucat_serve_errors_total — execution failures (500)
	drainRejects *obs.Counter // ucat_serve_draining_rejects_total — refused while draining (503)

	// Live load.
	inflight *obs.Gauge // ucat_serve_inflight — admitted, not yet answered
	queued   *obs.Gauge // ucat_serve_queued — sitting in the admission queue

	// Batcher.
	batchLeaders *obs.Counter // ucat_serve_batch_leaders_total — coalesced traversals executed
	batchJoined  *obs.Counter // ucat_serve_batch_joined_total — probes that rode along

	// Per-request I/O attributed from each worker's private view.
	readIOs  *obs.Counter // ucat_serve_read_ios_total — store reads across all queries
	poolHits *obs.Counter // ucat_serve_pool_hits_total — fetches served inside worker pools

	// Latency (nanoseconds, log₂ histograms).
	latency   *obs.Histogram // ucat_serve_latency_ns — admission to answer
	queueWait *obs.Histogram // ucat_serve_queue_wait_ns — admission to worker pickup
	perKind   map[string]*obs.Histogram

	// Other endpoints.
	httpHealthz *obs.Counter // ucat_serve_http_healthz_total
	httpStats   *obs.Counter // ucat_serve_http_stats_total
}

// queryKinds is the closed set of query kinds the API accepts, shared by the
// parser and the per-kind latency histograms.
var queryKinds = []string{"petq", "topk", "window", "windowtopk", "dstq", "neighbor"}

// newMetrics registers (or re-binds) the server's metrics in reg.
func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		requests:     reg.Counter("ucat_serve_requests_total"),
		completed:    reg.Counter("ucat_serve_completed_total"),
		rejected:     reg.Counter("ucat_serve_rejected_total"),
		timeouts:     reg.Counter("ucat_serve_timeouts_total"),
		badRequests:  reg.Counter("ucat_serve_bad_requests_total"),
		errors:       reg.Counter("ucat_serve_errors_total"),
		drainRejects: reg.Counter("ucat_serve_draining_rejects_total"),
		inflight:     reg.Gauge("ucat_serve_inflight"),
		queued:       reg.Gauge("ucat_serve_queued"),
		batchLeaders: reg.Counter("ucat_serve_batch_leaders_total"),
		batchJoined:  reg.Counter("ucat_serve_batch_joined_total"),
		readIOs:      reg.Counter("ucat_serve_read_ios_total"),
		poolHits:     reg.Counter("ucat_serve_pool_hits_total"),
		latency:      reg.Histogram("ucat_serve_latency_ns"),
		queueWait:    reg.Histogram("ucat_serve_queue_wait_ns"),
		perKind:      make(map[string]*obs.Histogram, len(queryKinds)),
		httpHealthz:  reg.Counter("ucat_serve_http_healthz_total"),
		httpStats:    reg.Counter("ucat_serve_http_stats_total"),
	}
	for _, kind := range queryKinds {
		m.perKind[kind] = reg.Histogram("ucat_serve_latency_ns_" + kind)
	}
	return m
}

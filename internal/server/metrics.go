package server

import (
	"ucat/internal/obs"
	"ucat/internal/pager"
)

// metrics holds direct pointers into the registry for every counter the hot
// path touches, so recording a request never takes the registry's lookup
// lock. The names below are the server's /metrics contract; OPERATIONS.md
// documents each one.
type metrics struct {
	// Request accounting on POST /v1/query.
	requests     *obs.Counter // ucat_serve_requests_total — every query request received
	completed    *obs.Counter // ucat_serve_completed_total — answered 200
	rejected     *obs.Counter // ucat_serve_rejected_total — admission queue full (429)
	timeouts     *obs.Counter // ucat_serve_timeouts_total — deadline hit (408)
	badRequests  *obs.Counter // ucat_serve_bad_requests_total — malformed / invalid (400)
	errors       *obs.Counter // ucat_serve_errors_total — execution failures (500)
	drainRejects *obs.Counter // ucat_serve_draining_rejects_total — refused while draining (503)

	// Per-protocol request accounting: every request is counted once under
	// its negotiated protocol, so both protocols share the rest of the
	// metrics contract identically.
	protoRequests map[string]*obs.Counter // ucat_serve_proto_requests_total_{json,binary}

	// Live load.
	inflight *obs.Gauge // ucat_serve_inflight — admitted, not yet answered
	queued   *obs.Gauge // ucat_serve_queued — sitting in the admission queue

	// Batcher.
	batchLeaders *obs.Counter // ucat_serve_batch_leaders_total — coalesced traversals executed
	batchJoined  *obs.Counter // ucat_serve_batch_joined_total — probes that rode along

	// Per-request I/O, summed from each request's Session tally as it
	// finishes. The raw shared-pool lifetime totals live under
	// ucat_serve_sharedpool_* (see registerPoolMetrics); every serving fetch
	// flows through a Session, so the two views agree up to scrape timing
	// (a request mid-flight has moved the pool counters but not yet these).
	readIOs  *obs.Counter // ucat_serve_read_ios_total — store reads across all queries
	poolHits *obs.Counter // ucat_serve_pool_hits_total — fetches served by the shared pool

	// Latency (nanoseconds, log₂ histograms).
	latency   *obs.Histogram // ucat_serve_latency_ns — admission to answer
	queueWait *obs.Histogram // ucat_serve_queue_wait_ns — admission to worker pickup
	perKind   map[string]*obs.Histogram

	// Other endpoints.
	httpHealthz *obs.Counter // ucat_serve_http_healthz_total
	httpStats   *obs.Counter // ucat_serve_http_stats_total
}

// queryKinds is the closed set of query kinds the API accepts, shared by the
// parser and the per-kind latency histograms.
var queryKinds = []string{"petq", "topk", "window", "windowtopk", "dstq", "neighbor"}

// newMetrics registers (or re-binds) the server's metrics in reg.
func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		requests:     reg.Counter("ucat_serve_requests_total"),
		completed:    reg.Counter("ucat_serve_completed_total"),
		rejected:     reg.Counter("ucat_serve_rejected_total"),
		timeouts:     reg.Counter("ucat_serve_timeouts_total"),
		badRequests:  reg.Counter("ucat_serve_bad_requests_total"),
		errors:       reg.Counter("ucat_serve_errors_total"),
		drainRejects: reg.Counter("ucat_serve_draining_rejects_total"),
		protoRequests: map[string]*obs.Counter{
			protoJSON:   reg.Counter("ucat_serve_proto_requests_total_json"),
			protoBinary: reg.Counter("ucat_serve_proto_requests_total_binary"),
		},
		inflight:     reg.Gauge("ucat_serve_inflight"),
		queued:       reg.Gauge("ucat_serve_queued"),
		batchLeaders: reg.Counter("ucat_serve_batch_leaders_total"),
		batchJoined:  reg.Counter("ucat_serve_batch_joined_total"),
		readIOs:      reg.Counter("ucat_serve_read_ios_total"),
		poolHits:     reg.Counter("ucat_serve_pool_hits_total"),
		latency:      reg.Histogram("ucat_serve_latency_ns"),
		queueWait:    reg.Histogram("ucat_serve_queue_wait_ns"),
		perKind:      make(map[string]*obs.Histogram, len(queryKinds)),
		httpHealthz:  reg.Counter("ucat_serve_http_healthz_total"),
		httpStats:    reg.Counter("ucat_serve_http_stats_total"),
	}
	for _, kind := range queryKinds {
		m.perKind[kind] = reg.Histogram("ucat_serve_latency_ns_" + kind)
	}
	return m
}

// registerPoolMetrics exposes the shared buffer pool on /metrics as
// read-on-scrape metrics — the pool already maintains these values
// atomically, so mirroring them into push counters would just add a second
// copy that can skew:
//
//	ucat_serve_sharedpool_frames / _stripes     — configured geometry
//	ucat_serve_sharedpool_occupancy / _pinned   — instantaneous residency
//	ucat_serve_sharedpool_reads_total / _hits_total / _writes_total
//	ucat_serve_sharedpool_hit_rate_permille     — lifetime Hits/(Hits+Reads) × 1000
//	ucat_serve_sharedpool_evictions_total_<policy>
//
// The eviction counter is per policy, name-suffixed like the per-kind
// latency histograms; all three policies are always registered so
// dashboards keep a stable contract, with the inactive ones pinned at 0.
func registerPoolMetrics(reg *obs.Registry, pool *pager.Pool) {
	reg.GaugeFunc("ucat_serve_sharedpool_frames", func() int64 { return int64(pool.Frames()) })
	reg.GaugeFunc("ucat_serve_sharedpool_stripes", func() int64 { return int64(pool.Shards()) })
	reg.GaugeFunc("ucat_serve_sharedpool_occupancy", func() int64 { return int64(pool.CachedPages()) })
	reg.GaugeFunc("ucat_serve_sharedpool_pinned", pool.Pins)
	reg.CounterFunc("ucat_serve_sharedpool_reads_total", func() uint64 { return pool.Stats().Reads })
	reg.CounterFunc("ucat_serve_sharedpool_hits_total", func() uint64 { return pool.Stats().Hits })
	reg.CounterFunc("ucat_serve_sharedpool_writes_total", func() uint64 { return pool.Stats().Writes })
	reg.GaugeFunc("ucat_serve_sharedpool_hit_rate_permille", func() int64 {
		return int64(pool.Stats().HitRate() * 1000)
	})
	for _, pol := range pager.Policies {
		name := "ucat_serve_sharedpool_evictions_total_" + pol.String()
		if pol == pool.Policy() {
			reg.CounterFunc(name, pool.Evictions)
		} else {
			reg.CounterFunc(name, func() uint64 { return 0 })
		}
	}
}

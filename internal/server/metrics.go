package server

import (
	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/pager"
	"ucat/internal/wal"
)

// metrics holds direct pointers into the registry for every counter the hot
// path touches, so recording a request never takes the registry's lookup
// lock. The names below are the server's /metrics contract; OPERATIONS.md
// documents each one.
type metrics struct {
	// Request accounting on POST /v1/query.
	requests     *obs.Counter // ucat_serve_requests_total — every query request received
	completed    *obs.Counter // ucat_serve_completed_total — answered 200
	rejected     *obs.Counter // ucat_serve_rejected_total — admission queue full (429)
	timeouts     *obs.Counter // ucat_serve_timeouts_total — deadline hit (408)
	badRequests  *obs.Counter // ucat_serve_bad_requests_total — malformed / invalid (400)
	errors       *obs.Counter // ucat_serve_errors_total — execution failures (500)
	drainRejects *obs.Counter // ucat_serve_draining_rejects_total — refused while draining (503)

	// Per-protocol request accounting: every request is counted once under
	// its negotiated protocol, so both protocols share the rest of the
	// metrics contract identically.
	protoRequests map[string]*obs.Counter // ucat_serve_proto_requests_total_{json,binary}

	// Live load.
	inflight *obs.Gauge // ucat_serve_inflight — admitted, not yet answered
	queued   *obs.Gauge // ucat_serve_queued — sitting in the admission queue

	// Batcher.
	batchLeaders *obs.Counter // ucat_serve_batch_leaders_total — coalesced traversals executed
	batchJoined  *obs.Counter // ucat_serve_batch_joined_total — probes that rode along

	// Per-request I/O, summed from each request's Session tally as it
	// finishes. The raw shared-pool lifetime totals live under
	// ucat_serve_sharedpool_* (see registerPoolMetrics); every serving fetch
	// flows through a Session, so the two views agree up to scrape timing
	// (a request mid-flight has moved the pool counters but not yet these).
	readIOs  *obs.Counter // ucat_serve_read_ios_total — store reads across all queries
	poolHits *obs.Counter // ucat_serve_pool_hits_total — fetches served by the shared pool

	// Latency (nanoseconds, log₂ histograms).
	latency   *obs.Histogram // ucat_serve_latency_ns — admission to answer
	queueWait *obs.Histogram // ucat_serve_queue_wait_ns — admission to worker pickup
	perKind   map[string]*obs.Histogram

	// Other endpoints.
	httpHealthz *obs.Counter // ucat_serve_http_healthz_total
	httpStats   *obs.Counter // ucat_serve_http_stats_total

	// Ingest accounting on POST /v1/ingest (live servers; registered always
	// so the /metrics contract is stable, pinned at 0 on read-only servers).
	ingestRequests *obs.Counter              // ucat_ingest_requests_total — every ingest request received
	ingestErrors   *obs.Counter              // ucat_ingest_errors_total — malformed, invalid, or WAL-failed (400/403/405)
	ingestRejected *obs.Counter              // ucat_ingest_rejected_total — refused while draining (503)
	ingestLatency  *obs.Histogram            // ucat_ingest_latency_ns — decode done to durable ack
	ingestOps      map[wal.Type]*obs.Counter // ucat_ingest_ops_total_{insert,update,delete} — durably applied ops
}

// queryKinds is the closed set of query kinds the API accepts, shared by the
// parser and the per-kind latency histograms.
var queryKinds = []string{"petq", "topk", "window", "windowtopk", "dstq", "neighbor"}

// newMetrics registers (or re-binds) the server's metrics in reg.
func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		requests:     reg.Counter("ucat_serve_requests_total"),
		completed:    reg.Counter("ucat_serve_completed_total"),
		rejected:     reg.Counter("ucat_serve_rejected_total"),
		timeouts:     reg.Counter("ucat_serve_timeouts_total"),
		badRequests:  reg.Counter("ucat_serve_bad_requests_total"),
		errors:       reg.Counter("ucat_serve_errors_total"),
		drainRejects: reg.Counter("ucat_serve_draining_rejects_total"),
		protoRequests: map[string]*obs.Counter{
			protoJSON:   reg.Counter("ucat_serve_proto_requests_total_json"),
			protoBinary: reg.Counter("ucat_serve_proto_requests_total_binary"),
		},
		inflight:     reg.Gauge("ucat_serve_inflight"),
		queued:       reg.Gauge("ucat_serve_queued"),
		batchLeaders: reg.Counter("ucat_serve_batch_leaders_total"),
		batchJoined:  reg.Counter("ucat_serve_batch_joined_total"),
		readIOs:      reg.Counter("ucat_serve_read_ios_total"),
		poolHits:     reg.Counter("ucat_serve_pool_hits_total"),
		latency:      reg.Histogram("ucat_serve_latency_ns"),
		queueWait:    reg.Histogram("ucat_serve_queue_wait_ns"),
		perKind:      make(map[string]*obs.Histogram, len(queryKinds)),
		httpHealthz:  reg.Counter("ucat_serve_http_healthz_total"),
		httpStats:    reg.Counter("ucat_serve_http_stats_total"),
	}
	for _, kind := range queryKinds {
		m.perKind[kind] = reg.Histogram("ucat_serve_latency_ns_" + kind)
	}
	m.ingestRequests = reg.Counter("ucat_ingest_requests_total")
	m.ingestErrors = reg.Counter("ucat_ingest_errors_total")
	m.ingestRejected = reg.Counter("ucat_ingest_rejected_total")
	m.ingestLatency = reg.Histogram("ucat_ingest_latency_ns")
	m.ingestOps = map[wal.Type]*obs.Counter{
		wal.TypeInsert: reg.Counter("ucat_ingest_ops_total_insert"),
		wal.TypeUpdate: reg.Counter("ucat_ingest_ops_total_update"),
		wal.TypeDelete: reg.Counter("ucat_ingest_ops_total_delete"),
	}
	return m
}

// registerIngestGauges exposes the live engine's write-path state on /metrics
// as read-on-scrape metrics (live servers only — absent on read-only servers,
// unlike the push counters above, since there is no engine to read):
//
//	ucat_ingest_delta_ops             — visible ops not yet folded into the base
//	ucat_ingest_epoch                 — folds completed since open
//	ucat_ingest_wal_appended_lsn / _durable_lsn
//	ucat_ingest_wal_records_total / _bytes_total / _fsyncs_total
//	ucat_ingest_wal_sync_calls_total  — Sync waits (≫ fsyncs under group commit)
//	ucat_ingest_wal_segments          — segments on disk (falls at truncation)
func (m *metrics) registerIngestGauges(reg *obs.Registry, live *core.Live) {
	reg.GaugeFunc("ucat_ingest_delta_ops", func() int64 { return int64(live.DeltaLen()) })
	reg.GaugeFunc("ucat_ingest_epoch", func() int64 { return int64(live.Epoch()) })
	reg.GaugeFunc("ucat_ingest_wal_appended_lsn", func() int64 { return int64(live.WAL().Stats().AppendedLSN) })
	reg.GaugeFunc("ucat_ingest_wal_durable_lsn", func() int64 { return int64(live.WAL().Stats().DurableLSN) })
	reg.CounterFunc("ucat_ingest_wal_records_total", func() uint64 { return live.WAL().Stats().Records })
	reg.CounterFunc("ucat_ingest_wal_bytes_total", func() uint64 { return live.WAL().Stats().Bytes })
	reg.CounterFunc("ucat_ingest_wal_fsyncs_total", func() uint64 { return live.WAL().Stats().Fsyncs })
	reg.CounterFunc("ucat_ingest_wal_sync_calls_total", func() uint64 { return live.WAL().Stats().SyncCalls })
	reg.GaugeFunc("ucat_ingest_wal_segments", func() int64 { return int64(live.WAL().Stats().Segments) })
}

// registerPoolMetrics exposes the shared buffer pool on /metrics as
// read-on-scrape metrics — the pool already maintains these values
// atomically, so mirroring them into push counters would just add a second
// copy that can skew:
//
//	ucat_serve_sharedpool_frames / _stripes     — configured geometry
//	ucat_serve_sharedpool_occupancy / _pinned   — instantaneous residency
//	ucat_serve_sharedpool_reads_total / _hits_total / _writes_total
//	ucat_serve_sharedpool_hit_rate_permille     — lifetime Hits/(Hits+Reads) × 1000
//	ucat_serve_sharedpool_evictions_total_<policy>
//
// The eviction counter is per policy, name-suffixed like the per-kind
// latency histograms; all three policies are always registered so
// dashboards keep a stable contract, with the inactive ones pinned at 0.
// The pool is resolved through a getter at every scrape, not captured once:
// live servers rebuild the shared pool at each fold, and the metrics must
// follow the current epoch's pool rather than pin the boot-time one alive.
func registerPoolMetrics(reg *obs.Registry, pool func() *pager.Pool) {
	reg.GaugeFunc("ucat_serve_sharedpool_frames", func() int64 { return int64(pool().Frames()) })
	reg.GaugeFunc("ucat_serve_sharedpool_stripes", func() int64 { return int64(pool().Shards()) })
	reg.GaugeFunc("ucat_serve_sharedpool_occupancy", func() int64 { return int64(pool().CachedPages()) })
	reg.GaugeFunc("ucat_serve_sharedpool_pinned", func() int64 { return pool().Pins() })
	reg.CounterFunc("ucat_serve_sharedpool_reads_total", func() uint64 { return pool().Stats().Reads })
	reg.CounterFunc("ucat_serve_sharedpool_hits_total", func() uint64 { return pool().Stats().Hits })
	reg.CounterFunc("ucat_serve_sharedpool_writes_total", func() uint64 { return pool().Stats().Writes })
	reg.GaugeFunc("ucat_serve_sharedpool_hit_rate_permille", func() int64 {
		return int64(pool().Stats().HitRate() * 1000)
	})
	for _, pol := range pager.Policies {
		name := "ucat_serve_sharedpool_evictions_total_" + pol.String()
		if pol == pool().Policy() {
			reg.CounterFunc(name, func() uint64 { return pool().Evictions() })
		} else {
			reg.CounterFunc(name, func() uint64 { return 0 })
		}
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/pager"
)

// TestSharedPoolContentionDeterminism is the shared-pool smoke CI runs under
// -race (make bench-smoke): for every eviction policy, a server with two
// stripes and a deliberately undersized shared pool — so victim scans run
// constantly while concurrent requests hold pins — must answer concurrent
// PETQ probes bit-identically to direct relation execution, with the
// micro-batcher on to maximize interleaving.
func TestSharedPoolContentionDeterminism(t *testing.T) {
	queries := []string{"0:1.0", "3:0.7,4:0.3", "1:0.25,2:0.25,3:0.5", "7:0.9,0:0.1", "5:0.5,6:0.5"}
	for _, pol := range pager.Policies {
		t.Run(pol.String(), func(t *testing.T) {
			rel := buildRelation(t, core.PDRTree, 400)

			// Direct answers first, through the relation's own pool, before
			// the server touches anything.
			want := make(map[string][]core.Match, len(queries))
			for _, qs := range queries {
				m, err := rel.PETQ(mustUDA(t, qs), 0.2)
				if err != nil {
					t.Fatalf("direct PETQ(%s): %v", qs, err)
				}
				want[qs] = m
			}

			_, ts := newTestServer(t, Config{
				Relation:    rel,
				Workers:     4,
				PoolFrames:  24, // undersized: the relation spans far more pages
				PoolStripes: 2,
				PoolPolicy:  pol.String(),
				BatchWindow: 200 * time.Microsecond,
			})

			const rounds = 8
			var wg sync.WaitGroup
			for r := 0; r < rounds; r++ {
				for _, qs := range queries {
					wg.Add(1)
					go func(qs string) {
						defer wg.Done()
						status, qr := postQuery(t, ts,
							fmt.Sprintf(`{"kind":"petq","query":"%s","tau":0.2,"limit":100000}`, qs))
						if status != http.StatusOK {
							t.Errorf("query %s: status %d", qs, status)
							return
						}
						w := want[qs]
						if qr.Count != len(w) || len(qr.Matches) != len(w) {
							t.Errorf("query %s: served %d/%d answers, direct %d",
								qs, qr.Count, len(qr.Matches), len(w))
							return
						}
						for j, m := range qr.Matches {
							if m.TID != w[j].TID || m.Prob != w[j].Prob {
								t.Errorf("query %s answer %d differs: served %v direct %v",
									qs, j, m, w[j])
								return
							}
						}
					}(qs)
				}
			}
			wg.Wait()
		})
	}
}

// TestStatsPoolSection asserts /v1/stats carries the shared-pool health
// picture and /metrics the ucat_serve_sharedpool_* family, with the
// per-policy eviction counters present for all three policies.
func TestStatsPoolSection(t *testing.T) {
	rel := buildRelation(t, core.PDRTree, 400)
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		Relation:    rel,
		Workers:     2,
		PoolFrames:  16,
		PoolStripes: 2,
		PoolPolicy:  "gdsf",
		Registry:    reg,
	})
	for i := 0; i < 4; i++ {
		if status, _ := postQuery(t, ts, `{"kind":"petq","query":"0:0.5,1:0.5","tau":0.1}`); status != http.StatusOK {
			t.Fatalf("warmup query %d: status %d", i, status)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	var stats statsPayload
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	p := stats.Pool
	if p.Policy != "gdsf" || p.Frames != 16 || p.Stripes != 2 {
		t.Fatalf("pool geometry wrong: %+v", p)
	}
	if p.Reads == 0 {
		t.Fatalf("pool counted no reads after queries: %+v", p)
	}
	if p.Occupancy <= 0 || p.Occupancy > p.Frames {
		t.Fatalf("occupancy %d out of range (frames %d)", p.Occupancy, p.Frames)
	}
	if p.Pinned != 0 {
		t.Fatalf("pool reports %d pinned frames at rest", p.Pinned)
	}
	if p.HitRate < 0 || p.HitRate > 1 {
		t.Fatalf("hit rate %v out of [0,1]", p.HitRate)
	}
	if stats.Config.PoolStripes != 2 || stats.Config.PoolPolicy != "gdsf" {
		t.Fatalf("config echo missing pool fields: %+v", stats.Config)
	}

	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	for _, name := range []string{
		"ucat_serve_sharedpool_frames 16",
		"ucat_serve_sharedpool_stripes 2",
		"ucat_serve_sharedpool_reads_total",
		"ucat_serve_sharedpool_hits_total",
		"ucat_serve_sharedpool_hit_rate_permille",
		"ucat_serve_sharedpool_occupancy",
		"ucat_serve_sharedpool_evictions_total_clock",
		"ucat_serve_sharedpool_evictions_total_lru",
		"ucat_serve_sharedpool_evictions_total_gdsf",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// TestPoolPolicyRejected ensures a bad policy string fails server
// construction instead of silently running CLOCK.
func TestPoolPolicyRejected(t *testing.T) {
	rel := buildRelation(t, core.PDRTree, 10)
	if _, err := New(Config{Relation: rel, PoolPolicy: "mru"}); err == nil {
		t.Fatalf("New accepted unknown pool policy")
	} else if !strings.Contains(err.Error(), "mru") {
		t.Fatalf("error does not name the bad policy: %v", err)
	}
}

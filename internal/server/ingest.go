package server

// POST /v1/ingest: the durable write endpoint. Each request carries a batch
// of operations applied atomically through core.Live — WAL append, group
// commit, publish (DURABILITY.md §4, §5) — and is acknowledged only after
// its records are durable. The handler runs Apply on its own goroutine (the
// HTTP handler's), NOT through the query worker pool: Apply blocks on the
// group-commit fsync, and parking query workers under it would starve reads;
// concurrent ingest handlers instead coalesce into shared fsyncs via the
// WAL's leader/rider protocol, mirroring the query micro-batcher's shape.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"ucat/internal/cliutil"
	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/wal"
)

// IngestOp is one operation in a POST /v1/ingest batch.
//
//	{"op": "insert", "dist": "3:0.7,9:0.3"}
//	{"op": "update", "tid": 17, "dist": "3:1"}
//	{"op": "delete", "tid": 17}
//
// Dist uses the item:prob notation shared with the query API and CLI tools.
type IngestOp struct {
	Op   string `json:"op"`
	TID  uint32 `json:"tid"`
	Dist string `json:"dist"`
}

// IngestRequest is the wire format of POST /v1/ingest.
type IngestRequest struct {
	Ops []IngestOp `json:"ops"`
}

// IngestResponse acknowledges a durable batch. TIDs has one entry per
// operation (freshly assigned ids for inserts, the operation's own id
// otherwise); LSN is the batch's last log sequence number — by the time the
// client reads this document, everything at or below it has been fsynced.
type IngestResponse struct {
	TraceID   uint64   `json:"trace_id,omitempty"`
	TIDs      []uint32 `json:"tids,omitempty"`
	LSN       uint64   `json:"lsn,omitempty"`
	Durable   bool     `json:"durable"`
	ElapsedNS int64    `json:"elapsed_ns"`
	Error     string   `json:"error,omitempty"`
}

// maxIngestOps bounds one batch; larger loads split into multiple requests
// (which still share fsyncs through group commit).
const maxIngestOps = 4096

// handleIngest is POST /v1/ingest.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.met.ingestRequests.Inc()
	if s.live == nil {
		s.met.ingestErrors.Inc()
		writeError(w, http.StatusForbidden, "server is read-only (start ucatd with -wal to accept writes)")
		return
	}
	if r.Method != http.MethodPost {
		s.met.ingestErrors.Inc()
		writeError(w, http.StatusMethodNotAllowed, "use POST with an ops body")
		return
	}
	ops, err := decodeIngest(w, r)
	if err != nil {
		s.met.ingestErrors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Writes drain with queries: Shutdown waits for in-flight ingests, and a
	// draining server refuses new ones before touching the WAL.
	if !s.gate.enter() {
		s.met.ingestRejected.Inc()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.gate.leave()

	f := s.flight.Begin("ingest")
	start := time.Now()
	tids, lsn, err := s.live.Apply(ops)
	elapsed := time.Since(start)
	s.met.ingestLatency.Observe(uint64(elapsed))
	if err != nil {
		s.met.ingestErrors.Inc()
		f.Outcome = obs.OutcomeError
		f.Err = err.Error()
		rec := f.Complete()
		s.reqlog.Log(rec)
		// A validation failure appended nothing; a WAL failure is reported
		// un-acked and the ops are invisible either way (DURABILITY.md §4).
		writeJSON(w, http.StatusBadRequest, IngestResponse{
			TraceID: rec.ID, Durable: false,
			ElapsedNS: elapsed.Nanoseconds(), Error: err.Error(),
		})
		return
	}
	for _, op := range ops {
		s.met.ingestOps[op.Kind].Inc()
	}
	f.Results = len(ops)
	f.Outcome = obs.OutcomeOK
	rec := f.Complete()
	s.reqlog.Log(rec)
	writeJSON(w, http.StatusOK, IngestResponse{
		TraceID: rec.ID, TIDs: tids, LSN: lsn, Durable: true,
		ElapsedNS: elapsed.Nanoseconds(),
	})
}

// decodeIngest parses and validates the request body into core ops.
func decodeIngest(w http.ResponseWriter, r *http.Request) ([]core.Op, error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var req IngestRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("malformed request: %v", err)
	}
	if len(req.Ops) == 0 {
		return nil, fmt.Errorf("empty ops batch")
	}
	if len(req.Ops) > maxIngestOps {
		return nil, fmt.Errorf("batch of %d ops exceeds the %d-op limit; split it", len(req.Ops), maxIngestOps)
	}
	ops := make([]core.Op, len(req.Ops))
	for i, in := range req.Ops {
		switch in.Op {
		case "insert", "update":
			u, err := cliutil.ParseUDA(in.Dist)
			if err != nil {
				return nil, fmt.Errorf("op %d: bad distribution: %v", i, err)
			}
			kind := wal.TypeInsert
			if in.Op == "update" {
				kind = wal.TypeUpdate
			} else if in.TID != 0 {
				return nil, fmt.Errorf("op %d: insert must not carry a tid (ids are assigned by the server)", i)
			}
			ops[i] = core.Op{Kind: kind, TID: in.TID, U: u}
		case "delete":
			if in.Dist != "" {
				return nil, fmt.Errorf("op %d: delete must not carry a distribution", i)
			}
			ops[i] = core.Op{Kind: wal.TypeDelete, TID: in.TID}
		default:
			return nil, fmt.Errorf("op %d: unknown op %q (want insert|update|delete)", i, in.Op)
		}
	}
	return ops, nil
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ucat/internal/core"
	"ucat/internal/obs"
)

// getRecords fetches and decodes /debug/requests with the given query string.
func getRecords(t *testing.T, base, query string) []obs.RequestRecord {
	t.Helper()
	resp, err := http.Get(base + "/debug/requests" + query)
	if err != nil {
		t.Fatalf("GET /debug/requests%s: %v", query, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/requests%s: status %d", query, resp.StatusCode)
	}
	var recs []obs.RequestRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatalf("decoding /debug/requests%s: %v", query, err)
	}
	return recs
}

// TestFlightTraceAndDebugEndpoints drives one query of every kind through a
// keep-every-tree server and checks the flight surface end to end: trace IDs
// on the wire, the /debug/requests list, per-ID lookup with the span tree,
// and the error statuses.
func TestFlightTraceAndDebugEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{SlowThreshold: -1})
	bodies := map[string]string{
		"petq":     `{"kind":"petq","query":"0:0.5,1:0.5","tau":0.3}`,
		"topk":     `{"kind":"topk","query":"0:0.5,1:0.5","k":5}`,
		"window":   `{"kind":"window","query":"0:0.5,1:0.5","c":1,"tau":0.3}`,
		"dstq":     `{"kind":"dstq","query":"0:0.5,1:0.5","td":0.5,"div":"L1"}`,
		"neighbor": `{"kind":"neighbor","query":"0:0.5,1:0.5","k":3,"div":"L1"}`,
	}
	ids := make(map[string]uint64, len(bodies))
	for kind, body := range bodies {
		status, qr := postQuery(t, ts, body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%+v)", kind, status, qr)
		}
		if qr.TraceID == 0 {
			t.Fatalf("%s: response carries no trace_id", kind)
		}
		ids[kind] = qr.TraceID
	}

	recs := getRecords(t, ts.URL, "")
	if len(recs) != len(bodies) {
		t.Fatalf("/debug/requests returned %d records, want %d", len(recs), len(bodies))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].ID <= recs[i].ID {
			t.Fatalf("records not newest-first: %d then %d", recs[i-1].ID, recs[i].ID)
		}
	}
	for _, r := range recs {
		if r.Outcome != obs.OutcomeOK {
			t.Fatalf("trace %d outcome %q, want ok", r.ID, r.Outcome)
		}
		if r.Tree == "" || !strings.Contains(r.Tree, "serve."+r.Kind) {
			t.Fatalf("keep-all server dropped trace %d's span tree (kind %s): %q", r.ID, r.Kind, r.Tree)
		}
		if r.ID != ids[r.Kind] {
			t.Fatalf("trace %d filed under kind %q, wire said %d", r.ID, r.Kind, ids[r.Kind])
		}
	}

	// Filters: by kind, and a minms no test query can reach.
	byKind := getRecords(t, ts.URL, "?kind=petq")
	if len(byKind) != 1 || byKind[0].Kind != "petq" {
		t.Fatalf("?kind=petq returned %+v", byKind)
	}
	if far := getRecords(t, ts.URL, "?minms=60000"); len(far) != 0 {
		t.Fatalf("?minms=60000 returned %d records, want 0", len(far))
	}

	// Per-ID lookup carries the full record, tree included.
	resp, err := http.Get(fmt.Sprintf("%s/debug/requests/%d", ts.URL, ids["petq"]))
	if err != nil {
		t.Fatalf("GET by id: %v", err)
	}
	var rec obs.RequestRecord
	err = json.NewDecoder(resp.Body).Decode(&rec)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding by-id record: %v", err)
	}
	if rec.ID != ids["petq"] || rec.Kind != "petq" || !strings.Contains(rec.Tree, "serve.petq") {
		t.Fatalf("by-id record %+v", rec)
	}

	for path, want := range map[string]int{
		"/debug/requests/424242":    http.StatusNotFound,
		"/debug/requests/xyzzy":     http.StatusBadRequest,
		"/debug/requests?minms=abc": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestFlightIODeltasMatchPoolStats is the flight-recorder extension of the
// PR 7 accounting pin: the per-request reads/hits in /debug/requests records
// must sum exactly to the shared pool's Stats delta — every page fetch the
// pool saw is attributed to exactly one trace ID.
func TestFlightIODeltasMatchPoolStats(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	before := s.epoch.Load().pool.Stats()

	queries := []string{
		`{"kind":"petq","query":"0:1.0","tau":0.2}`,
		`{"kind":"petq","query":"3:0.7,4:0.3","tau":0.4}`,
		`{"kind":"topk","query":"1:0.25,2:0.25,3:0.5","k":7}`,
		`{"kind":"window","query":"2:0.5,3:0.5","c":1,"tau":0.3}`,
		`{"kind":"dstq","query":"0:0.5,1:0.5","td":0.4,"div":"L1"}`,
		`{"kind":"neighbor","query":"5:0.9,6:0.1","k":4,"div":"L2"}`,
	}
	for _, body := range queries {
		if status, qr := postQuery(t, ts, body); status != http.StatusOK {
			t.Fatalf("query %s: status %d (%+v)", body, status, qr)
		}
	}

	delta := s.epoch.Load().pool.Stats()
	delta.Reads -= before.Reads
	delta.Hits -= before.Hits
	var reads, hits uint64
	recs := s.flight.Snapshot(obs.FlightFilter{Limit: 1000})
	if len(recs) != len(queries) {
		t.Fatalf("flight recorder retained %d records, want %d", len(recs), len(queries))
	}
	for _, r := range recs {
		reads += r.Reads
		hits += r.Hits
	}
	if reads != delta.Reads || hits != delta.Hits {
		t.Fatalf("flight records sum to reads=%d hits=%d; pool delta reads=%d hits=%d",
			reads, hits, delta.Reads, delta.Hits)
	}
	if reads+hits == 0 {
		t.Fatalf("queries did no page fetches at all; the pin is vacuous")
	}
}

// TestBatchRiderFlightRecords drives one coalesced batch deterministically
// (executeBatch directly, no timing window) and checks the rider contract:
// every waiter's answer is bit-identical to direct execution, and the flight
// records share the leader's traversal — same reads, hits, batch size and
// span tree, each under its own trace ID.
func TestBatchRiderFlightRecords(t *testing.T) {
	rel := buildRelation(t, core.InvertedIndex, 400)
	s, _ := newTestServer(t, Config{Relation: rel, SlowThreshold: -1})

	q := mustUDA(t, "0:0.5,1:0.5")
	taus := []float64{0.3, 0.4, 0.5, 0.6}
	waiters := make([]*request, len(taus))
	for i, tau := range taus {
		req := &request{
			kind: "petq", q: q, tau: tau, limit: defaultAnswerLimit,
			ctx: context.Background(), done: make(chan result, 1), enq: time.Now(),
		}
		req.flight = s.flight.Begin("petq")
		req.flight.Tau = tau
		req.id = req.flight.ID
		waiters[i] = req
	}
	s.executeBatch(&batch{key: waiters[0].key, kind: "petq", q: q, waiters: waiters})

	var leader obs.RequestRecord
	recs := make([]obs.RequestRecord, len(waiters))
	for i, w := range waiters {
		var res result
		select {
		case res = <-w.done:
		default:
			t.Fatalf("waiter %d got no result", i)
		}
		if res.status != http.StatusOK {
			t.Fatalf("waiter %d: status %d (%+v)", i, res.status, res.body)
		}
		if !res.body.Batched || res.body.BatchSize != len(waiters) {
			t.Fatalf("waiter %d not served as a batch of %d: %+v", i, len(waiters), res.body)
		}
		if res.body.TraceID != w.id || res.rec.ID != w.id {
			t.Fatalf("waiter %d answered under trace %d/%d, want its own %d",
				i, res.body.TraceID, res.rec.ID, w.id)
		}
		recs[i] = res.rec
		if i == 0 {
			leader = res.rec
		}

		// Bit-identical to direct execution, rider or leader.
		want, err := rel.PETQ(q, taus[i])
		if err != nil {
			t.Fatalf("direct PETQ: %v", err)
		}
		if len(res.body.Matches) != len(want) {
			t.Fatalf("tau=%g served %d answers, direct %d", taus[i], len(res.body.Matches), len(want))
		}
		for j, m := range res.body.Matches {
			if m.TID != want[j].TID || m.Prob != want[j].Prob {
				t.Fatalf("tau=%g answer %d differs: served %v, direct %v", taus[i], j, m, want[j])
			}
		}
	}

	if leader.Batch != "leader" {
		t.Fatalf("first waiter filed as %q, want leader", leader.Batch)
	}
	if leader.Tree == "" || !strings.Contains(leader.Tree, "serve.petq.batch") {
		t.Fatalf("leader record missing the batch traversal tree: %q", leader.Tree)
	}
	for i, r := range recs[1:] {
		if r.Batch != "rider" {
			t.Fatalf("waiter %d filed as %q, want rider", i+1, r.Batch)
		}
		if r.Reads != leader.Reads || r.Hits != leader.Hits {
			t.Fatalf("rider %d io (%d,%d) differs from leader (%d,%d)",
				i+1, r.Reads, r.Hits, leader.Reads, leader.Hits)
		}
		if r.Tree != leader.Tree {
			t.Fatalf("rider %d does not inherit the leader's span tree", i+1)
		}
		if r.BatchSize != len(waiters) {
			t.Fatalf("rider %d batch size %d, want %d", i+1, r.BatchSize, len(waiters))
		}
	}

	// Every record is retrievable from the recorder under its own ID.
	for _, w := range waiters {
		if _, ok := s.flight.Get(w.id); !ok {
			t.Fatalf("trace %d not retained by the flight recorder", w.id)
		}
	}
}

// TestRequestLogLines wires a JSON slog logger with LogSample 1 and checks
// the request log: one line per completed request with the trace ID, and an
// ERROR line for a queued request that timed out.
func TestRequestLogLines(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8,
		Logger: logger, LogSample: 1,
		SlowThreshold: time.Hour, // ordinary successes stay INFO
	})

	ids := make(map[uint64]bool)
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"kind":"petq","query":"0:0.5,1:0.5","tau":%g}`, 0.3+float64(i)*0.1)
		status, qr := postQuery(t, ts, body)
		if status != http.StatusOK {
			t.Fatalf("query %d: status %d", i, status)
		}
		ids[qr.TraceID] = true
	}

	lines := decodeLogLines(t, buf.String())
	if len(lines) != 3 {
		t.Fatalf("LogSample=1 logged %d lines for 3 requests:\n%s", len(lines), buf.String())
	}
	for _, l := range lines {
		if l["level"] != "INFO" || l["kind"] != "petq" || l["outcome"] != "ok" {
			t.Fatalf("success line %v", l)
		}
		if !ids[uint64(l["trace_id"].(float64))] {
			t.Fatalf("log line carries unknown trace id: %v", l)
		}
	}

	// Park the worker so the next request times out in the queue; the handler
	// must still emit a real-time ERROR line for it.
	buf.Reset()
	gate := make(chan struct{})
	defer close(gate)
	if !s.enqueue(&task{gate: gate}) {
		t.Fatalf("could not park the worker")
	}
	waitFor(t, func() bool { return len(s.queue) == 0 })
	if status, _ := postQuery(t, ts, `{"kind":"petq","query":"0:1.0","tau":0.1,"timeout_ms":30}`); status != http.StatusRequestTimeout {
		t.Fatalf("queued request status %d, want 408", status)
	}
	var timeoutLine map[string]any
	for _, l := range decodeLogLines(t, buf.String()) {
		if l["outcome"] == obs.OutcomeTimeout {
			timeoutLine = l
		}
	}
	if timeoutLine == nil {
		t.Fatalf("no timeout line in the request log:\n%s", buf.String())
	}
	if timeoutLine["level"] != "ERROR" || timeoutLine["trace_id"].(float64) == 0 {
		t.Fatalf("timeout line %v", timeoutLine)
	}
}

// decodeLogLines parses newline-delimited JSON log output.
func decodeLogLines(t *testing.T, s string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// syncBuffer is a mutex-guarded strings.Builder for concurrent slog output.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

func (sb *syncBuffer) Reset() {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.b.Reset()
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/wal"
)

// newLiveServer builds a live (writable) server over an empty relation with
// fsync disabled (unit tests; durability itself is covered by the core and
// wal crash tests).
func newLiveServer(t *testing.T, every int) (*Server, *httptest.Server, *core.Live) {
	t.Helper()
	lv, err := core.OpenLive(core.LiveOptions{
		Dir:             t.TempDir(),
		WAL:             wal.Options{Fsync: wal.FsyncNever, GroupWindow: -1},
		CheckpointEvery: every,
		RelOptions:      &core.Options{Kind: core.InvertedIndex, PoolFrames: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lv.Close() })
	s, ts := newTestServer(t, Config{Live: lv, Registry: obs.NewRegistry()})
	return s, ts, lv
}

// postIngest sends one ingest document and decodes the ack.
func postIngest(t *testing.T, ts *httptest.Server, body string) (int, IngestResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/ingest: %v", err)
	}
	defer resp.Body.Close()
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatalf("decoding ingest response: %v", err)
	}
	return resp.StatusCode, ir
}

// TestIngestAndQuery: writes become visible to queries immediately after the
// durable ack, with exact probabilities.
func TestIngestAndQuery(t *testing.T) {
	_, ts, _ := newLiveServer(t, 0)

	status, ir := postIngest(t, ts, `{"ops": [
		{"op": "insert", "dist": "1:0.8,2:0.2"},
		{"op": "insert", "dist": "1:0.3,3:0.7"}
	]}`)
	if status != http.StatusOK || !ir.Durable {
		t.Fatalf("ingest: status %d, durable %v, err %q", status, ir.Durable, ir.Error)
	}
	if len(ir.TIDs) != 2 || ir.LSN != 2 {
		t.Fatalf("ack: tids %v, lsn %d", ir.TIDs, ir.LSN)
	}

	status, qr := postQuery(t, ts, `{"kind":"petq","query":"1:1","tau":0.1}`)
	if status != http.StatusOK {
		t.Fatalf("query: status %d, err %q", status, qr.Error)
	}
	if qr.Count != 2 {
		t.Fatalf("petq count %d, want 2 (matches %v)", qr.Count, qr.Matches)
	}
	if qr.Matches[0].TID != ir.TIDs[0] || qr.Matches[0].Prob != 0.8 {
		t.Fatalf("top match %+v, want tid %d prob 0.8", qr.Matches[0], ir.TIDs[0])
	}

	// Update then delete; queries follow.
	status, ir2 := postIngest(t, ts, fmt.Sprintf(`{"ops": [
		{"op": "update", "tid": %d, "dist": "2:1"},
		{"op": "delete", "tid": %d}
	]}`, ir.TIDs[0], ir.TIDs[1]))
	if status != http.StatusOK {
		t.Fatalf("second ingest: status %d err %q", status, ir2.Error)
	}
	status, qr = postQuery(t, ts, `{"kind":"petq","query":"1:1","tau":0}`)
	if status != http.StatusOK || qr.Count != 0 {
		t.Fatalf("post-mutation petq: status %d count %d", status, qr.Count)
	}
	status, qr = postQuery(t, ts, `{"kind":"petq","query":"2:1","tau":0.5}`)
	if status != http.StatusOK || qr.Count != 1 || qr.Matches[0].Prob != 1 {
		t.Fatalf("post-update petq: status %d resp %+v", status, qr)
	}
}

// TestIngestValidation: malformed bodies, unknown ops, bad tids, and the
// read-only server all answer with client errors, never a 500 or a panic.
func TestIngestValidation(t *testing.T) {
	_, ts, _ := newLiveServer(t, 0)
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"malformed json":  {`{"ops": [`, http.StatusBadRequest},
		"empty batch":     {`{"ops": []}`, http.StatusBadRequest},
		"unknown op":      {`{"ops": [{"op": "upsert", "dist": "1:1"}]}`, http.StatusBadRequest},
		"bad dist":        {`{"ops": [{"op": "insert", "dist": "1:2"}]}`, http.StatusBadRequest},
		"insert with tid": {`{"ops": [{"op": "insert", "tid": 7, "dist": "1:1"}]}`, http.StatusBadRequest},
		"delete unknown":  {`{"ops": [{"op": "delete", "tid": 999}]}`, http.StatusBadRequest},
		"delete w/ dist":  {`{"ops": [{"op": "delete", "tid": 0, "dist": "1:1"}]}`, http.StatusBadRequest},
	} {
		status, ir := postIngest(t, ts, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (err %q)", name, status, tc.want, ir.Error)
		}
	}

	// An invalid batch is atomic: nothing from it is visible.
	status, qr := postQuery(t, ts, `{"kind":"petq","query":"1:1","tau":0}`)
	if status != http.StatusOK || qr.Count != 0 {
		t.Fatalf("leaked state after failed batches: count %d", qr.Count)
	}

	// Read-only server refuses writes.
	_, roTS := newTestServer(t, Config{Registry: obs.NewRegistry()})
	status, ir := postIngest(t, roTS, `{"ops": [{"op": "insert", "dist": "1:1"}]}`)
	if status != http.StatusForbidden {
		t.Fatalf("read-only ingest: status %d, err %q", status, ir.Error)
	}
}

// TestIngestConcurrentWithQueries hammers ingest and queries together across
// fold boundaries (CheckpointEvery small), asserting every answer stays
// well-formed and the final count converges.
func TestIngestConcurrentWithQueries(t *testing.T) {
	s, ts, lv := newLiveServer(t, 40)
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				item := 1 + (w*perWriter+i)%6
				status, ir := postIngest(t, ts, fmt.Sprintf(
					`{"ops": [{"op": "insert", "dist": "%d:0.6,%d:0.4"}]}`, item, item+1))
				if status != http.StatusOK {
					t.Errorf("writer %d op %d: status %d err %q", w, i, status, ir.Error)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 80; i++ {
			status, qr := postQuery(t, ts, `{"kind":"topk","query":"3:1","k":5}`)
			if status != http.StatusOK {
				t.Errorf("query %d: status %d err %q", i, status, qr.Error)
				return
			}
		}
	}()
	wg.Wait()

	status, qr := postQuery(t, ts, `{"kind":"petq","query":"1:1","tau":-1}`)
	_ = qr
	if status != http.StatusBadRequest { // tau<0 rejected; sanity that parsing still works
		t.Fatalf("negative tau accepted: %d", status)
	}
	if got := lv.Len(); got != writers*perWriter {
		t.Fatalf("final Len %d, want %d", got, writers*perWriter)
	}
	// The stats document reflects the live engine.
	st := fetchStats(t, ts)
	if st.Ingest == nil || st.Ingest.Tuples != writers*perWriter {
		t.Fatalf("stats ingest section: %+v", st.Ingest)
	}
	if st.Ingest.WAL.DurableLSN != uint64(writers*perWriter) {
		t.Fatalf("durable LSN %d, want %d", st.Ingest.WAL.DurableLSN, writers*perWriter)
	}
	if s.epoch.Load().rel != lv.Base() {
		t.Fatal("serving epoch not anchored at the live base after folds")
	}
}

// fetchStats grabs and decodes /v1/stats.
func fetchStats(t *testing.T, ts *httptest.Server) statsPayload {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsPayload
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

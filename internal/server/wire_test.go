package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ucat/internal/core"
	"ucat/internal/uda"
	"ucat/internal/wire"
)

// postWire sends one binary query frame and decodes the response frame. The
// binary protocol always answers over a 200 transport; errors are in-band.
func postWire(t *testing.T, ts *httptest.Server, req *wire.Request) wire.Response {
	t.Helper()
	frame := wire.AppendRequest(nil, req)
	resp, err := http.Post(ts.URL+"/v1/query", wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("POST binary /v1/query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary transport status = %d, want 200 (errors are in-band)", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("response Content-Type = %q, want %q", ct, wire.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response frame: %v", err)
	}
	frameType, body, err := wire.DecodeFrame(raw)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if frameType != wire.FrameResponse {
		t.Fatalf("frame type = %#x, want FrameResponse", frameType)
	}
	var wr wire.Response
	if err := wire.DecodeResponse(body, &wr); err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	return wr
}

func pairs(t *testing.T, s string) []uda.Pair {
	t.Helper()
	return mustUDA(t, s).Pairs()
}

// TestWireKindsEndToEnd runs all six kinds over the binary protocol and
// cross-checks every answer bit-for-bit against the JSON protocol.
func TestWireKindsEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		json string
		bin  wire.Request
	}{
		{`{"kind":"petq","query":"0:0.5,1:0.5","tau":0.2}`,
			wire.Request{Kind: wire.KindPETQ, Pairs: pairs(t, "0:0.5,1:0.5"), Tau: 0.2}},
		{`{"kind":"topk","query":"0:0.5,1:0.5","k":3}`,
			wire.Request{Kind: wire.KindTopK, Pairs: pairs(t, "0:0.5,1:0.5"), K: 3}},
		{`{"kind":"window","query":"2:1.0","c":1,"tau":0.2}`,
			wire.Request{Kind: wire.KindWindow, Pairs: pairs(t, "2:1.0"), C: 1, Tau: 0.2}},
		{`{"kind":"windowtopk","query":"2:1.0","c":1,"k":2}`,
			wire.Request{Kind: wire.KindWindowTopK, Pairs: pairs(t, "2:1.0"), C: 1, K: 2}},
		{`{"kind":"dstq","query":"0:0.5,1:0.5","td":0.5,"div":"L1"}`,
			wire.Request{Kind: wire.KindDSTQ, Pairs: pairs(t, "0:0.5,1:0.5"), TD: 0.5, Div: uda.L1}},
		{`{"kind":"neighbor","query":"0:0.5,1:0.5","k":4}`,
			wire.Request{Kind: wire.KindNeighbor, Pairs: pairs(t, "0:0.5,1:0.5"), K: 4}},
	}
	for _, tc := range cases {
		kind := tc.bin.Kind.String()
		status, jr := postQuery(t, ts, tc.json)
		if status != http.StatusOK {
			t.Fatalf("%s: JSON status %d", kind, status)
		}
		wr := postWire(t, ts, &tc.bin)
		if wr.Status != 0 {
			t.Fatalf("%s: binary in-band status %d (%s)", kind, wr.Status, wr.Err)
		}
		if wr.Kind.String() != jr.Kind {
			t.Fatalf("%s: kind mismatch: binary %s, json %s", kind, wr.Kind, jr.Kind)
		}
		if wr.Count != jr.Count || wr.Truncated != jr.Truncated {
			t.Fatalf("%s: count/truncated mismatch: binary %d/%v, json %d/%v",
				kind, wr.Count, wr.Truncated, jr.Count, jr.Truncated)
		}
		if len(wr.Matches) != len(jr.Matches) || len(wr.Neighbors) != len(jr.Neighbors) {
			t.Fatalf("%s: answer sizes differ: binary %d/%d, json %d/%d",
				kind, len(wr.Matches), len(wr.Neighbors), len(jr.Matches), len(jr.Neighbors))
		}
		for i := range wr.Matches {
			if wr.Matches[i] != jr.Matches[i] {
				t.Fatalf("%s: match %d differs: binary %+v, json %+v", kind, i, wr.Matches[i], jr.Matches[i])
			}
		}
		for i := range wr.Neighbors {
			if wr.Neighbors[i] != jr.Neighbors[i] {
				t.Fatalf("%s: neighbor %d differs: binary %+v, json %+v", kind, i, wr.Neighbors[i], jr.Neighbors[i])
			}
		}
		if wr.TraceID == 0 {
			t.Fatalf("%s: binary response lost its trace ID", kind)
		}
		if !wr.HasIO {
			t.Fatalf("%s: binary response lost its I/O attribution", kind)
		}
	}
}

// TestWireInBandErrors exercises the failure paths that must answer with an
// in-band error frame over a 200 transport.
func TestWireInBandErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Invalid parameters reach validation and come back 400 in-band.
	wr := postWire(t, ts, &wire.Request{Kind: wire.KindTopK, Pairs: pairs(t, "0:1.0"), K: 0})
	if wr.Status != http.StatusBadRequest || wr.Err == "" {
		t.Fatalf("k=0: in-band status %d err %q, want 400 with message", wr.Status, wr.Err)
	}

	// A garbage body with the binary Content-Type: still 200 + error frame.
	resp, err := http.Post(ts.URL+"/v1/query", wire.ContentType, strings.NewReader("not a frame"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("garbage frame: transport status %d, want 200", resp.StatusCode)
	}
	var er wire.Response
	if _, body, err := wire.DecodeFrame(raw); err != nil {
		t.Fatalf("garbage frame: response not a valid frame: %v", err)
	} else if err := wire.DecodeResponse(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Status != http.StatusBadRequest {
		t.Fatalf("garbage frame: in-band status %d, want 400", er.Status)
	}

	// An unsupported protocol version is refused cleanly in-band.
	frame := wire.AppendRequest(nil, &wire.Request{Kind: wire.KindPETQ, Pairs: pairs(t, "0:1.0"), Tau: 0.1})
	frame[2] = wire.Version + 1
	resp, err = http.Post(ts.URL+"/v1/query", wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, body, err := wire.DecodeFrame(raw); err != nil {
		t.Fatalf("version skew: response not a valid frame: %v", err)
	} else if err := wire.DecodeResponse(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Status != http.StatusBadRequest || !strings.Contains(er.Err, "version") {
		t.Fatalf("version skew: in-band %d %q, want 400 mentioning version", er.Status, er.Err)
	}

	// GET with the binary Content-Type: method error, in-band.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/query", nil)
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, body, err := wire.DecodeFrame(raw); err != nil {
		t.Fatalf("GET: response not a valid frame: %v", err)
	} else if err := wire.DecodeResponse(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Status != http.StatusMethodNotAllowed {
		t.Fatalf("GET: in-band status %d, want 405", er.Status)
	}
}

// TestWireOversizedFrame is the binary analog of the 1 MiB JSON body cap:
// both a lying length header and a genuinely oversized body must come back
// as a clean in-band error, not a hang or a panic.
func TestWireOversizedFrame(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	check := func(name string, payload []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/query", wire.ContentType, bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: transport status %d, want 200", name, resp.StatusCode)
		}
		var er wire.Response
		if _, body, err := wire.DecodeFrame(raw); err != nil {
			t.Fatalf("%s: response not a valid frame: %v", name, err)
		} else if err := wire.DecodeResponse(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Status != http.StatusBadRequest {
			t.Fatalf("%s: in-band status %d (%s), want 400", name, er.Status, er.Err)
		}
		if !strings.Contains(er.Err, "MaxFrameBytes") {
			t.Fatalf("%s: error %q does not identify the size cap", name, er.Err)
		}
	}

	// Header declares more than MaxFrameBytes; body is tiny.
	lying := []byte{'U', 'W', wire.Version, wire.FrameQuery, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(lying[4:], wire.MaxFrameBytes+1)
	check("lying header", lying)

	// Body genuinely exceeds the cap (header + cap + 1 bytes on the wire).
	big := make([]byte, wire.HeaderLen+wire.MaxFrameBytes+1)
	copy(big, []byte{'U', 'W', wire.Version, wire.FrameQuery})
	binary.LittleEndian.PutUint32(big[4:], wire.MaxFrameBytes+1)
	check("oversized body", big)
}

// TestWireMidFrameDisconnect cuts the connection halfway through a query
// frame. The server must shrug it off — no panic, no wedged worker — and
// keep answering on fresh connections.
func TestWireMidFrameDisconnect(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	frame := wire.AppendRequest(nil, &wire.Request{Kind: wire.KindPETQ, Pairs: pairs(t, "0:0.5,1:0.5"), Tau: 0.2})
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	// Declare the full frame length but send only half, then vanish.
	fmt.Fprintf(conn, "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		wire.ContentType, len(frame))
	if _, err := conn.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The server must still be fully functional for the next client.
	deadline := time.Now().Add(5 * time.Second)
	for {
		wr := postWire(t, ts, &wire.Request{Kind: wire.KindPETQ, Pairs: pairs(t, "0:0.5,1:0.5"), Tau: 0.2})
		if wr.Status == 0 && wr.Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server unhealthy after mid-frame disconnect: %+v", wr)
		}
	}
}

// brokenWriter fails after a few bytes, the way a ResponseWriter does when
// the client's deadline closes the connection while a binary response is
// half-written.
type brokenWriter struct {
	hdr     http.Header
	n       int // bytes accepted before failing
	written int
}

func (b *brokenWriter) Header() http.Header {
	if b.hdr == nil {
		b.hdr = make(http.Header)
	}
	return b.hdr
}
func (b *brokenWriter) WriteHeader(int) {}
func (b *brokenWriter) Write(p []byte) (int, error) {
	room := b.n - b.written
	if room <= 0 {
		return 0, errors.New("client gone: connection closed mid-write")
	}
	if len(p) > room {
		b.written += room
		return room, errors.New("client gone: connection closed mid-write")
	}
	b.written += len(p)
	return len(p), nil
}

// TestWireHalfWrittenResponse drives writeBinary into a write failure partway
// through a frame (deadline expiry mid-response). The path must not panic and
// must not poison the response buffer pool for the next request.
func TestWireHalfWrittenResponse(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	body := QueryResponse{Kind: "petq", TraceID: 7, Count: 2,
		Matches: []WireMatch{{TID: 1, Prob: 0.9}, {TID: 2, Prob: 0.8}},
		IO:      &WireIO{Reads: 1, Hits: 1}, ElapsedNS: 1000}
	s.writeBinary(&brokenWriter{n: 5}, http.StatusOK, &body)

	// The pool must hand back a usable buffer: a follow-up response must be a
	// complete, decodable frame.
	rec := httptest.NewRecorder()
	s.writeBinary(rec, http.StatusOK, &body)
	var wr wire.Response
	if _, fbody, err := wire.DecodeFrame(rec.Body.Bytes()); err != nil {
		t.Fatalf("frame after half-written response invalid: %v", err)
	} else if err := wire.DecodeResponse(fbody, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.TraceID != 7 || len(wr.Matches) != 2 {
		t.Fatalf("follow-up response corrupted: %+v", wr)
	}
}

// TestWireBatchRiderCorrectness coalesces concurrent same-distribution topk
// and window probes (run under -race in CI) and checks every rider's answer
// bit-for-bit against direct execution.
func TestWireBatchRiderCorrectness(t *testing.T) {
	rel := buildRelation(t, core.InvertedIndex, 400)
	s, ts := newTestServer(t, Config{
		Relation:    rel,
		Workers:     2,
		BatchWindow: 250 * time.Millisecond,
		BatchMax:    16,
	})

	t.Run("topk", func(t *testing.T) {
		ks := []int{1, 3, 5, 8}
		results := make([]wire.Response, len(ks))
		var wg sync.WaitGroup
		for i, k := range ks {
			wg.Add(1)
			go func(i, k int) {
				defer wg.Done()
				results[i] = postWire(t, ts, &wire.Request{Kind: wire.KindTopK,
					Pairs: pairs(t, "0:0.5,1:0.5"), K: k, TimeoutMS: 5000})
			}(i, k)
		}
		wg.Wait()
		for i, k := range ks {
			wr := results[i]
			if wr.Status != 0 {
				t.Fatalf("k=%d: in-band status %d (%s)", k, wr.Status, wr.Err)
			}
			if !wr.Batched {
				t.Fatalf("k=%d: answer not batched", k)
			}
			want, err := rel.TopK(mustUDA(t, "0:0.5,1:0.5"), k)
			if err != nil {
				t.Fatalf("direct TopK: %v", err)
			}
			if len(wr.Matches) != len(want) {
				t.Fatalf("k=%d: served %d answers, direct %d", k, len(wr.Matches), len(want))
			}
			for j, m := range wr.Matches {
				if m.TID != want[j].TID || m.Prob != want[j].Prob {
					t.Fatalf("k=%d answer %d differs: served %v, direct %v", k, j, m, want[j])
				}
			}
		}
	})

	t.Run("window", func(t *testing.T) {
		taus := []float64{0.2, 0.35, 0.5, 0.65}
		results := make([]wire.Response, len(taus))
		var wg sync.WaitGroup
		for i, tau := range taus {
			wg.Add(1)
			go func(i int, tau float64) {
				defer wg.Done()
				results[i] = postWire(t, ts, &wire.Request{Kind: wire.KindWindow,
					Pairs: pairs(t, "2:1.0"), C: 1, Tau: tau, TimeoutMS: 5000})
			}(i, tau)
		}
		wg.Wait()
		for i, tau := range taus {
			wr := results[i]
			if wr.Status != 0 {
				t.Fatalf("tau=%g: in-band status %d (%s)", tau, wr.Status, wr.Err)
			}
			if !wr.Batched {
				t.Fatalf("tau=%g: answer not batched", tau)
			}
			want, err := rel.WindowPETQ(mustUDA(t, "2:1.0"), 1, tau)
			if err != nil {
				t.Fatalf("direct WindowPETQ: %v", err)
			}
			if len(wr.Matches) != len(want) {
				t.Fatalf("tau=%g: served %d answers, direct %d", tau, len(wr.Matches), len(want))
			}
			for j, m := range wr.Matches {
				if m.TID != want[j].TID || m.Prob != want[j].Prob {
					t.Fatalf("tau=%g answer %d differs: served %v, direct %v", tau, j, m, want[j])
				}
			}
		}
	})

	// Differing window radii must NOT share a traversal: the batch keys
	// diverge, so both run (possibly as singleton batches) with correct
	// per-radius answers.
	t.Run("window-radius-isolation", func(t *testing.T) {
		for _, c := range []uint32{1, 2} {
			wr := postWire(t, ts, &wire.Request{Kind: wire.KindWindow,
				Pairs: pairs(t, "3:1.0"), C: c, Tau: 0.3, TimeoutMS: 5000})
			if wr.Status != 0 {
				t.Fatalf("c=%d: in-band status %d (%s)", c, wr.Status, wr.Err)
			}
			want, err := rel.WindowPETQ(mustUDA(t, "3:1.0"), c, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if len(wr.Matches) != len(want) {
				t.Fatalf("c=%d: served %d answers, direct %d", c, len(wr.Matches), len(want))
			}
		}
	})

	if s.met.batchJoined.Value() == 0 {
		t.Fatalf("no probe ever joined a batch (leaders=%d joined=%d)",
			s.met.batchLeaders.Value(), s.met.batchJoined.Value())
	}
}

// nullWriter is the steady-state ResponseWriter stand-in for the alloc pin:
// header map pre-built, writes discarded.
type nullWriter struct{ hdr http.Header }

func (n *nullWriter) Header() http.Header         { return n.hdr }
func (n *nullWriter) WriteHeader(int)             {}
func (n *nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestWireEncodePathAllocs pins the binary response encode path — writeBinary
// on a realistic 64-match answer — at ≤ 2 allocs/request in steady state (the
// measured value is 0: pooled buffer, append-only encoder, shared header
// value). Any regression here is a hot-path leak, the binary analog of the
// flight recorder's TestFlightCommonPathAllocs.
func TestWireEncodePathAllocs(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	body := QueryResponse{Kind: "petq", TraceID: 12345, Count: 64,
		Matches:   make([]WireMatch, 64),
		IO:        &WireIO{Reads: 10, Hits: 54, IOs: 10, HitRate: 0.84},
		ElapsedNS: 123456}
	for i := range body.Matches {
		body.Matches[i] = WireMatch{TID: uint32(i), Prob: 1 / float64(i+1)}
	}
	w := &nullWriter{hdr: make(http.Header)}
	// Warm the pool outside the measured region.
	s.writeBinary(w, http.StatusOK, &body)
	allocs := testing.AllocsPerRun(1000, func() {
		s.writeBinary(w, http.StatusOK, &body)
	})
	if allocs > 2 {
		t.Fatalf("writeBinary: %v allocs/request, want <= 2 (target 0)", allocs)
	}
	t.Logf("writeBinary: %v allocs/request over a 64-match answer", allocs)
}

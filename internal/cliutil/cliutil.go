// Package cliutil holds the argument-parsing helpers shared by the command
// line tools (ucatquery, ucatshell, ucatbench).
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"ucat/internal/invidx"
	"ucat/internal/uda"
)

// ParseUDA parses the "item:prob,item:prob,..." notation used by every tool.
func ParseUDA(s string) (uda.UDA, error) {
	if strings.TrimSpace(s) == "" {
		return uda.UDA{}, fmt.Errorf("empty distribution; want item:prob,item:prob,...")
	}
	var pairs []uda.Pair
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return uda.UDA{}, fmt.Errorf("bad pair %q; want item:prob", part)
		}
		item, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return uda.UDA{}, fmt.Errorf("bad item in %q: %v", part, err)
		}
		prob, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return uda.UDA{}, fmt.Errorf("bad probability in %q: %v", part, err)
		}
		pairs = append(pairs, uda.Pair{Item: uint32(item), Prob: prob})
	}
	return uda.New(pairs...)
}

// ParseDivergence parses L1 | L2 | KL (case-insensitive).
func ParseDivergence(s string) (uda.Divergence, error) {
	switch strings.ToUpper(s) {
	case "L1":
		return uda.L1, nil
	case "L2":
		return uda.L2, nil
	case "KL":
		return uda.KL, nil
	default:
		return 0, fmt.Errorf("unknown divergence %q (want L1, L2 or KL)", s)
	}
}

// ParseStrategy resolves an inverted-index strategy by its display name.
func ParseStrategy(s string) (invidx.Strategy, error) {
	if s == invidx.Auto.String() {
		return invidx.Auto, nil
	}
	for _, st := range invidx.Strategies {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

package cliutil

import (
	"testing"

	"ucat/internal/invidx"
	"ucat/internal/uda"
)

func TestParseUDA(t *testing.T) {
	u, err := ParseUDA("1:0.3, 5:0.7")
	if err != nil {
		t.Fatalf("ParseUDA: %v", err)
	}
	if u.Prob(1) != 0.3 || u.Prob(5) != 0.7 {
		t.Errorf("ParseUDA = %v", u)
	}
	for _, bad := range []string{"", "  ", "1", "1:", ":0.5", "x:0.5", "1:y", "1:0.6,2:0.6"} {
		if _, err := ParseUDA(bad); err == nil {
			t.Errorf("ParseUDA(%q) succeeded", bad)
		}
	}
}

func TestParseDivergence(t *testing.T) {
	for s, want := range map[string]uda.Divergence{
		"L1": uda.L1, "l2": uda.L2, "kl": uda.KL, "KL": uda.KL,
	} {
		got, err := ParseDivergence(s)
		if err != nil || got != want {
			t.Errorf("ParseDivergence(%q) = (%v, %v)", s, got, err)
		}
	}
	if _, err := ParseDivergence("JS"); err == nil {
		t.Errorf("unknown divergence accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range invidx.Strategies {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = (%v, %v)", s.String(), got, err)
		}
	}
	if got, err := ParseStrategy("auto"); err != nil || got != invidx.Auto {
		t.Errorf("ParseStrategy(auto) = (%v, %v)", got, err)
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Errorf("unknown strategy accepted")
	}
}

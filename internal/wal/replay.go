package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// ReplayInfo summarizes one Replay pass, for logs and the recovery tests.
type ReplayInfo struct {
	// LastLSN is the highest LSN delivered to the callback (or `after` if the
	// log held nothing newer). The caller reopens the log at LastLSN+1.
	LastLSN uint64
	// Records is the number of records delivered.
	Records uint64
	// TruncatedTail is the number of torn bytes dropped from the end of the
	// final segment — nonzero after a crash that raced a write.
	TruncatedTail int
	// Segments is the number of segment files examined.
	Segments int
}

// Replay scans the log directory in LSN order and invokes fn for every record
// with LSN > after, implementing the recovery procedure of DURABILITY.md §7.
//
// Damage is classified by position (DURABILITY.md §8): a bad frame — short
// header or body, zero or oversized declared length, CRC mismatch — at the
// tail of the FINAL segment is a torn write from the crash and is silently
// dropped along with everything after it; the same damage anywhere else, a
// record that fails to decode despite a valid CRC, or a gap in the segment
// chain is ErrCorrupt. An error from fn aborts the replay and is returned
// as-is.
func Replay(dir string, after uint64, fn func(lsn uint64, rec Record) error) (ReplayInfo, error) {
	info := ReplayInfo{LastLSN: after}
	segs, err := listSegments(dir)
	if err != nil {
		return info, err
	}
	if len(segs) == 0 {
		return info, nil
	}
	// Skip segments whose records all have LSN ≤ after. A closed segment's
	// records end where the next segment begins; the final segment always
	// participates (its extent is only known by reading it).
	start := 0
	for start+1 < len(segs) && segs[start+1].first <= after+1 {
		start++
	}
	segs = segs[start:]
	if segs[0].first > after+1 {
		return info, fmt.Errorf("%w: log starts at LSN %d, need %d (missing segments)",
			ErrCorrupt, segs[0].first, after+1)
	}
	next := segs[0].first
	for i, seg := range segs {
		info.Segments++
		final := i+1 == len(segs)
		end, torn, err := replaySegment(seg, next, after, final, fn, &info)
		if err != nil {
			return info, err
		}
		if final {
			info.TruncatedTail = torn
			break
		}
		if torn > 0 {
			return info, fmt.Errorf("%w: %s: %d torn bytes in a non-final segment",
				ErrCorrupt, seg.path, torn)
		}
		// Chain contiguity: the next segment must pick up exactly where this
		// one stopped (DURABILITY.md §7 step 2).
		if segs[i+1].first != end+1 {
			return info, fmt.Errorf("%w: segment chain gap: %s ends at LSN %d but next segment starts at %d",
				ErrCorrupt, seg.path, end, segs[i+1].first)
		}
		next = end + 1
	}
	return info, nil
}

// replaySegment reads one segment file, verifying its header against the
// expected first LSN, and feeds its records with LSN > after to fn. It
// returns the LSN of the segment's last intact record (first-1 if none) and
// the number of trailing bytes that failed framing or CRC — the caller
// decides whether those bytes are an excusable torn tail.
func replaySegment(seg segment, want, after uint64, final bool, fn func(uint64, Record) error, info *ReplayInfo) (end uint64, torn int, err error) {
	b, err := os.ReadFile(seg.path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	first, err := parseHeader(b)
	if err != nil {
		if final {
			// A final segment without an intact header is wholly torn: the
			// crash beat the header write, and no record in it can have been
			// acknowledged — the first record fsync would have flushed the
			// header bytes written before it (DURABILITY.md §8).
			return want - 1, len(b), nil
		}
		return 0, 0, fmt.Errorf("%s: %w", seg.path, err)
	}
	if first != seg.first {
		return 0, 0, fmt.Errorf("%w: %s: header says first LSN %d, file name says %d",
			ErrCorrupt, seg.path, first, seg.first)
	}
	if first != want {
		return 0, 0, fmt.Errorf("%w: %s: segment starts at LSN %d, expected %d",
			ErrCorrupt, seg.path, first, want)
	}
	lsn := first - 1
	off := headerLen
	for off < len(b) {
		rest := b[off:]
		if len(rest) < 4 {
			return lsn, len(rest), nil
		}
		n := binary.LittleEndian.Uint32(rest)
		if n == 0 || n > MaxRecordBytes {
			return lsn, len(rest), nil
		}
		frame := int(4 + n + 4)
		if len(rest) < frame {
			return lsn, len(rest), nil
		}
		rec := rest[4 : 4+n]
		sum := binary.LittleEndian.Uint32(rest[4+n:])
		if crc32.Checksum(rec, castagnoli) != sum {
			return lsn, len(rest), nil
		}
		// The checksum vouched for these bytes: decode failure past this
		// point is corruption regardless of position (DURABILITY.md §8).
		r, err := decodeRecord(rec)
		if err != nil {
			return lsn, 0, fmt.Errorf("%s: LSN %d: %w", seg.path, lsn+1, err)
		}
		lsn++
		off += frame
		if lsn <= after {
			continue
		}
		if err := fn(lsn, r); err != nil {
			return lsn, 0, err
		}
		info.Records++
		if lsn > info.LastLSN {
			info.LastLSN = lsn
		}
	}
	return lsn, 0, nil
}

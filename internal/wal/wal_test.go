package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ucat/internal/uda"
)

// testRecords builds a deterministic mixed-type record stream.
func testRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		tid := uint32(i + 1)
		switch i % 3 {
		case 0:
			recs = append(recs, Record{Type: TypeInsert, TID: tid, Pairs: []uda.Pair{
				{Item: uint32(i % 7), Prob: 0.5},
				{Item: uint32(i%7) + 10, Prob: 0.25},
			}})
		case 1:
			recs = append(recs, Record{Type: TypeUpdate, TID: tid, Pairs: []uda.Pair{
				{Item: uint32(i % 11), Prob: 1.0 / float64(i+1)},
			}})
		default:
			recs = append(recs, Record{Type: TypeDelete, TID: tid})
		}
	}
	return recs
}

// replayAll collects every record after `after` from dir.
func replayAll(t *testing.T, dir string, after uint64) ([]Record, []uint64, ReplayInfo) {
	t.Helper()
	var recs []Record
	var lsns []uint64
	info, err := Replay(dir, after, func(lsn uint64, r Record) error {
		recs = append(recs, r)
		lsns = append(lsns, lsn)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, lsns, info
}

// normPairs makes nil and empty pair slices compare equal.
func normPairs(recs []Record) []Record {
	out := make([]Record, len(recs))
	for i, r := range recs {
		if len(r.Pairs) == 0 {
			r.Pairs = nil
		}
		out[i] = r
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(100)
	first, last, err := l.Append(want)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != 100 {
		t.Fatalf("LSN range = [%d,%d], want [1,100]", first, last)
	}
	if err := l.Sync(last); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != last {
		t.Fatalf("DurableLSN = %d, want %d", got, last)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, lsns, info := replayAll(t, dir, 0)
	if !reflect.DeepEqual(normPairs(got), normPairs(want)) {
		t.Fatalf("replayed records differ from appended")
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("lsns[%d] = %d, want %d", i, lsn, i+1)
		}
	}
	if info.LastLSN != 100 || info.Records != 100 || info.TruncatedTail != 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestReplayAfter(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(50)
	if _, _, err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, lsns, info := replayAll(t, dir, 30)
	if len(got) != 20 || lsns[0] != 31 || info.LastLSN != 50 {
		t.Fatalf("after=30: %d records, first lsn %v, info %+v", len(got), lsns[:1], info)
	}
	if !reflect.DeepEqual(normPairs(got), normPairs(want[30:])) {
		t.Fatal("suffix mismatch")
	}
	// Past the end: nothing to do.
	got, _, info = replayAll(t, dir, 50)
	if len(got) != 0 || info.LastLSN != 50 {
		t.Fatalf("after=end: %d records, info %+v", len(got), info)
	}
}

func TestRotationAndChain(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1, SegmentBytes: 256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(200)
	for _, r := range want {
		if _, _, err := l.Append([]Record{r}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(200); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations with 256-byte segments, stats %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(segs)) != st.Segments {
		t.Fatalf("on-disk segments %d != stats %d", len(segs), st.Segments)
	}
	got, _, info := replayAll(t, dir, 0)
	if !reflect.DeepEqual(normPairs(got), normPairs(want)) {
		t.Fatal("multi-segment replay mismatch")
	}
	if info.Segments != len(segs) {
		t.Fatalf("info.Segments = %d, want %d", info.Segments, len(segs))
	}
}

func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(90)
	for i := 0; i < 3; i++ {
		if _, _, err := l.Append(want[i*30 : (i+1)*30]); err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// LSNs 1..30 are in the first closed segment; 31..60 in the second.
	if _, err := l.TruncateThrough(29); err != nil {
		t.Fatal(err)
	}
	if segs, _ := listSegments(dir); len(segs) != 3 {
		t.Fatalf("truncate below a segment boundary removed something: %d segments", len(segs))
	}
	n, err := l.TruncateThrough(60)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("removed %d segments, want 2", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, lsns, _ := replayAll(t, dir, 60)
	if !reflect.DeepEqual(normPairs(got), normPairs(want[60:])) || lsns[0] != 61 {
		t.Fatal("replay after truncation mismatch")
	}
	// The retired prefix is gone: replaying from 0 must report the gap.
	_, err = Replay(dir, 0, func(uint64, Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay across truncated prefix: err = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := Record{Type: TypeInsert, TID: uint32(w*perWriter + i + 1),
					Pairs: []uda.Pair{{Item: uint32(w), Prob: 0.5}}}
				_, last, err := l.Append([]Record{rec})
				if err != nil {
					errs <- err
					return
				}
				if err := l.Sync(last); err != nil {
					errs <- err
					return
				}
				if l.DurableLSN() < last {
					errs <- fmt.Errorf("Sync(%d) returned but durable = %d", last, l.DurableLSN())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.AppendedLSN != writers*perWriter || st.DurableLSN != writers*perWriter {
		t.Fatalf("stats %+v", st)
	}
	if st.Fsyncs > st.SyncCalls {
		t.Fatalf("more fsyncs (%d) than Sync calls (%d)", st.Fsyncs, st.SyncCalls)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, _ := replayAll(t, dir, 0)
	if len(recs) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*perWriter)
	}
	seen := make(map[uint32]bool)
	for _, r := range recs {
		if seen[r.TID] {
			t.Fatalf("tid %d replayed twice", r.TID)
		}
		seen[r.TID] = true
	}
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncGroup, FsyncAlways, FsyncNever} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir, Fsync: mode, GroupWindow: -1}, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := testRecords(10)
			if _, _, err := l.Append(want); err != nil {
				t.Fatal(err)
			}
			if err := l.Sync(10); err != nil {
				t.Fatal(err)
			}
			if l.DurableLSN() != 10 {
				t.Fatalf("durable = %d", l.DurableLSN())
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			got, _, _ := replayAll(t, dir, 0)
			if !reflect.DeepEqual(normPairs(got), normPairs(want)) {
				t.Fatal("mismatch")
			}
		})
	}
}

func TestParseFsyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncMode
		ok   bool
	}{
		{"", FsyncGroup, true},
		{"group", FsyncGroup, true},
		{"always", FsyncAlways, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncMode(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseFsyncMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestAppendBadRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, err := l.Append(nil); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("empty batch: %v", err)
	}
	if _, _, err := l.Append([]Record{{Type: 0x7F, TID: 1}}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("unknown type: %v", err)
	}
	// A bad record mid-batch must not assign LSNs to the good prefix.
	bad := []Record{{Type: TypeDelete, TID: 1}, {Type: 0x7F, TID: 2}}
	if _, _, err := l.Append(bad); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("bad batch: %v", err)
	}
	if st := l.Stats(); st.AppendedLSN != 0 {
		t.Fatalf("bad batch assigned LSNs: %+v", st)
	}
}

func TestReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(40)
	if _, _, err := l.Append(want[:25]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(want[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v", err)
	}
	_, _, info := replayAll(t, dir, 0)
	l2, err := Open(Options{Dir: dir, GroupWindow: -1}, info.LastLSN+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l2.Append(want[25:]); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, lsns, _ := replayAll(t, dir, 0)
	if !reflect.DeepEqual(normPairs(got), normPairs(want)) {
		t.Fatal("records across reopen mismatch")
	}
	if lsns[len(lsns)-1] != 40 {
		t.Fatalf("last lsn %d", lsns[len(lsns)-1])
	}
}

// finalSegment returns the path of the highest-LSN segment in dir.
func finalSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

// TestTornTailEveryOffset truncates the final segment at every byte offset
// and asserts replay always succeeds with an intact prefix — the torn-write
// contract of DURABILITY.md §8.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(20)
	if _, _, err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := finalSegment(t, dir)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries, to know how many whole records survive each cut.
	bounds := []int{headerLen}
	off := headerLen
	for off < len(full) {
		n := binary.LittleEndian.Uint32(full[off:])
		off += int(4 + n + 4)
		bounds = append(bounds, off)
	}
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		info, err := Replay(dir, 0, func(_ uint64, r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: replay failed: %v", cut, err)
		}
		whole := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				whole++
			}
		}
		if len(got) != whole {
			t.Fatalf("cut=%d: %d records, want %d", cut, len(got), whole)
		}
		if !reflect.DeepEqual(normPairs(got), normPairs(want[:whole])) {
			t.Fatalf("cut=%d: surviving prefix differs", cut)
		}
		wantTorn := 0
		if cut > headerLen && cut != bounds[len(bounds)-1] {
			wantTorn = cut - bounds[whole]
		}
		if cut < headerLen {
			wantTorn = cut // wholly torn segment, header included
		}
		if info.TruncatedTail != wantTorn {
			t.Fatalf("cut=%d: TruncatedTail = %d, want %d", cut, info.TruncatedTail, wantTorn)
		}
	}
}

// TestCorruptionDetected flips bytes in places where damage must be an error,
// not an excusable torn tail.
func TestCorruptionDetected(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, GroupWindow: -1, SegmentBytes: 512}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range testRecords(60) {
			if _, _, err := l.Append([]Record{r}); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := listSegments(dir)
		if len(segs) < 3 {
			t.Fatalf("need ≥3 segments, got %d", len(segs))
		}
		return dir
	}
	wantCorrupt := func(t *testing.T, dir string) {
		t.Helper()
		_, err := Replay(dir, 0, func(uint64, Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	}

	t.Run("flipped byte in non-final segment", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		b, _ := os.ReadFile(segs[0].path)
		b[len(b)/2] ^= 0xFF
		os.WriteFile(segs[0].path, b, 0o644)
		wantCorrupt(t, dir)
	})
	t.Run("truncated non-final segment", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		b, _ := os.ReadFile(segs[0].path)
		os.WriteFile(segs[0].path, b[:len(b)-3], 0o644)
		wantCorrupt(t, dir)
	})
	t.Run("missing middle segment", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		os.Remove(segs[1].path)
		wantCorrupt(t, dir)
	})
	t.Run("bad magic", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		b, _ := os.ReadFile(segs[0].path)
		b[0] = 'X'
		os.WriteFile(segs[0].path, b, 0o644)
		wantCorrupt(t, dir)
	})
	t.Run("bad version", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		b, _ := os.ReadFile(segs[0].path)
		b[4] = 99
		os.WriteFile(segs[0].path, b, 0o644)
		wantCorrupt(t, dir)
	})
	t.Run("header/name LSN mismatch", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		b, _ := os.ReadFile(segs[0].path)
		binary.LittleEndian.PutUint64(b[8:], 999)
		os.WriteFile(segs[0].path, b, 0o644)
		wantCorrupt(t, dir)
	})
	t.Run("crc-valid undecodable record is corrupt even at the tail", func(t *testing.T) {
		dir := t.TempDir()
		// Hand-build a segment whose single record has a valid CRC but an
		// unknown type byte: the checksum vouches for the bytes, so this is
		// corruption (or a format skew), never a torn write.
		h := encodeHeader(1)
		rec := []byte{0x7F, 0x01}
		var frame []byte
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(rec)))
		frame = append(frame, rec...)
		frame = binary.LittleEndian.AppendUint32(frame, crcOf(rec))
		os.WriteFile(filepath.Join(dir, segmentName(1)), append(h[:], frame...), 0o644)
		wantCorrupt(t, dir)
	})
	t.Run("foreign files ignored", func(t *testing.T) {
		dir := build(t)
		os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("junk"), 0o644)
		os.WriteFile(filepath.Join(dir, "wal-zz.log"), []byte("junk"), 0o644)
		if _, err := Replay(dir, 0, func(uint64, Record) error { return nil }); err != nil {
			t.Fatalf("foreign files broke replay: %v", err)
		}
	})
}

func crcOf(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupWindow: -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(testRecords(5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n := 0
	_, err = Replay(dir, 0, func(uint64, Record) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 3 {
		t.Fatalf("err = %v after %d callbacks", err, n)
	}
}

// FuzzReplayWAL feeds arbitrary bytes as a single-segment log body: replay
// must never panic, and every record it yields must satisfy the format's
// invariants (DURABILITY.md §§3, 8).
func FuzzReplayWAL(f *testing.F) {
	// Seed with a well-formed segment.
	var body []byte
	for _, r := range testRecords(4) {
		var err error
		body, err = appendFrame(body, r)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(body)
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		h := encodeHeader(1)
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), append(h[:], data...), 0o644); err != nil {
			t.Skip()
		}
		var recs []Record
		info, err := Replay(dir, 0, func(lsn uint64, r Record) error {
			if lsn != uint64(len(recs))+1 {
				t.Fatalf("non-consecutive lsn %d at record %d", lsn, len(recs))
			}
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
			return
		}
		if info.Records != uint64(len(recs)) {
			t.Fatalf("info.Records = %d, callbacks = %d", info.Records, len(recs))
		}
		// Every yielded record must re-encode: the format round-trips.
		for _, r := range recs {
			switch r.Type {
			case TypeInsert, TypeUpdate, TypeDelete:
			default:
				t.Fatalf("replay yielded unknown type 0x%02x", byte(r.Type))
			}
			if _, err := appendFrame(nil, r); err != nil {
				t.Fatalf("yielded record does not re-encode: %v", err)
			}
		}
	})
}

// Package wal implements ucat's write-ahead log: the durability layer under
// the live ingest path (DURABILITY.md is the byte-level spec; DESIGN.md §21
// is the architecture rationale).
//
// The log is a directory of segment files, each a 16-byte header followed by
// length-prefixed, CRC-checked records. One record is one logical operation
// (insert, update, or delete of a single tuple); a record's LSN is implied by
// its position — the segment header carries the first LSN, and every record
// advances it by one. Payloads reuse the ucatwire value encodings
// (internal/wire): unsigned varints for ids and counts, raw IEEE-754 bits as
// fixed 8-byte words for probabilities, so a distribution round-trips through
// a crash bit-for-bit, exactly like it round-trips through the query wire.
//
// Durability follows the group-commit protocol (DURABILITY.md §4): Append
// buffers records and assigns LSNs but promises nothing; Sync(lsn) returns
// only once every record up to lsn is on stable storage. Concurrent Sync
// callers coalesce — one becomes the fsync leader, the rest ride on its
// barrier — mirroring the query micro-batcher's leader/rider shape. The
// ucatlint walsync check enforces the contract at the call-graph level: any
// path that appends must reach a Sync before acknowledging.
//
// Replay (DURABILITY.md §7) rebuilds the suffix of the operation stream after
// a crash. A torn tail — a partially-written final record in the final
// segment — is expected (the crash raced the write) and is dropped; the same
// damage anywhere else is corruption and an error.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"ucat/internal/uda"
	"ucat/internal/wire"
)

// Version is the format revision written into every segment header. Replay
// rejects segments of a version it does not speak.
const Version = 1

// headerLen is the segment header: magic "UWAL" (4), version (1), three
// reserved zero bytes, then the segment's first LSN as a fixed
// little-endian uint64.
const headerLen = 16

// frameOverhead is the per-record framing cost: a fixed little-endian uint32
// record length before the record and a fixed little-endian uint32 CRC-32C
// after it.
const frameOverhead = 8

// MaxRecordBytes bounds one record (type byte + payload), mirroring the
// serving layer's 1 MiB body cap. Replay treats a larger declared length as
// a torn or corrupt frame before touching the body.
const MaxRecordBytes = 1 << 20

// DefaultSegmentBytes is the rotation threshold: an append that would push
// the current segment past it starts a new segment first.
const DefaultSegmentBytes = 64 << 20

// DefaultGroupWindow is the group-commit coalescing window in FsyncGroup
// mode: the fsync leader waits this long before the barrier so concurrent
// appenders board the same flush.
const DefaultGroupWindow = 2 * time.Millisecond

var segMagic = [4]byte{'U', 'W', 'A', 'L'}

// castagnoli is the CRC-32C polynomial table; hardware-accelerated on
// amd64/arm64, and the checksum every storage system within shouting
// distance uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Type identifies a record's operation. The byte values are part of the
// on-disk format — append-only, never renumber (DURABILITY.md §3).
type Type byte

const (
	// TypeInsert adds a new tuple: payload is varint tid + pair list.
	TypeInsert Type = 0x01
	// TypeUpdate replaces a live tuple's distribution: same payload shape.
	TypeUpdate Type = 0x02
	// TypeDelete removes a live tuple: payload is varint tid only.
	TypeDelete Type = 0x03
)

// String names the record type for logs and tests; it never formats.
func (t Type) String() string {
	switch t {
	case TypeInsert:
		return "insert"
	case TypeUpdate:
		return "update"
	case TypeDelete:
		return "delete"
	}
	return "unknown"
}

// Record is one logical operation, the unit the log appends and replays.
// Pairs is empty for deletes.
type Record struct {
	Type  Type
	TID   uint32
	Pairs []uda.Pair
}

// Static errors, matched with errors.Is.
var (
	// ErrCorrupt marks damage replay cannot excuse: a bad frame anywhere
	// except the tail of the final segment, a CRC-valid record that fails to
	// decode, or a segment chain with a gap.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrBadRecord is returned by Append for a record the format cannot
	// represent (unknown type, oversized payload).
	ErrBadRecord = errors.New("wal: bad record")
)

// FsyncMode selects the durability discipline (ucatd -fsync).
type FsyncMode int

const (
	// FsyncGroup (the default) coalesces concurrent commits into one fsync:
	// the leader waits the group window, then issues a single barrier for
	// everything appended meanwhile.
	FsyncGroup FsyncMode = iota
	// FsyncAlways skips the coalescing wait: every Sync call that finds
	// undurable records issues the barrier immediately. Concurrent callers
	// still share one fsync when they race.
	FsyncAlways
	// FsyncNever trusts the OS page cache: Sync only flushes user-space
	// buffers. A machine crash can lose acknowledged writes; a process
	// crash cannot.
	FsyncNever
)

// ParseFsyncMode maps the -fsync flag values to a mode.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "", "group":
		return FsyncGroup, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync mode %q (want group|always|never)", s)
}

func (m FsyncMode) String() string {
	switch m {
	case FsyncGroup:
		return "group"
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "unknown"
}

// appendFrame appends one framed record — uint32 length, record bytes
// (type + payload), uint32 CRC-32C of the record bytes — onto dst.
func appendFrame(dst []byte, r Record) ([]byte, error) {
	switch r.Type {
	case TypeInsert, TypeUpdate, TypeDelete:
	default:
		return dst, fmt.Errorf("%w: type 0x%02x", ErrBadRecord, byte(r.Type))
	}
	lenOff := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length, patched below
	recOff := len(dst)
	dst = append(dst, byte(r.Type))
	dst = binary.AppendUvarint(dst, uint64(r.TID))
	if r.Type != TypeDelete {
		dst = wire.AppendPairs(dst, r.Pairs)
	}
	n := len(dst) - recOff
	if n > MaxRecordBytes {
		return dst[:lenOff], fmt.Errorf("%w: %d bytes exceeds MaxRecordBytes", ErrBadRecord, n)
	}
	binary.LittleEndian.PutUint32(dst[lenOff:], uint32(n))
	sum := crc32.Checksum(dst[recOff:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, sum), nil
}

// decodeRecord decodes the record bytes of one CRC-verified frame. Failure
// here is corruption, never a torn write: the checksum already vouched for
// the bytes.
func decodeRecord(b []byte) (Record, error) {
	if len(b) == 0 {
		return Record{}, fmt.Errorf("%w: empty record", ErrCorrupt)
	}
	r := Record{Type: Type(b[0])}
	body := b[1:]
	tid, n := binary.Uvarint(body)
	if n <= 0 || tid > 0xFFFFFFFF {
		return Record{}, fmt.Errorf("%w: bad tuple id varint", ErrCorrupt)
	}
	r.TID = uint32(tid)
	body = body[n:]
	switch r.Type {
	case TypeDelete:
		if len(body) != 0 {
			return Record{}, fmt.Errorf("%w: %d trailing bytes after delete", ErrCorrupt, len(body))
		}
	case TypeInsert, TypeUpdate:
		pairs, used, err := wire.DecodePairs(body)
		if err != nil {
			return Record{}, fmt.Errorf("%w: pair list: %v", ErrCorrupt, err)
		}
		if used != len(body) {
			return Record{}, fmt.Errorf("%w: %d trailing bytes after pair list", ErrCorrupt, len(body)-used)
		}
		r.Pairs = pairs
	default:
		return Record{}, fmt.Errorf("%w: unknown record type 0x%02x", ErrCorrupt, b[0])
	}
	return r, nil
}

// encodeHeader renders a segment header for the given first LSN.
func encodeHeader(firstLSN uint64) [headerLen]byte {
	var h [headerLen]byte
	copy(h[:4], segMagic[:])
	h[4] = Version
	binary.LittleEndian.PutUint64(h[8:], firstLSN)
	return h
}

// parseHeader validates a segment header and returns its first LSN.
func parseHeader(b []byte) (uint64, error) {
	if len(b) < headerLen {
		return 0, fmt.Errorf("%w: segment shorter than its header", ErrCorrupt)
	}
	if [4]byte(b[:4]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if b[4] != Version {
		return 0, fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, b[4])
	}
	return binary.LittleEndian.Uint64(b[8:]), nil
}

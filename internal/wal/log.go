package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Log.
type Options struct {
	// Dir is the log directory, created if missing. Required.
	Dir string
	// Fsync selects the durability discipline. Zero is FsyncGroup.
	Fsync FsyncMode
	// GroupWindow is the coalescing wait in FsyncGroup mode; 0 means
	// DefaultGroupWindow, negative means no wait (pure racing coalescing,
	// like FsyncAlways).
	GroupWindow time.Duration
	// SegmentBytes is the rotation threshold; 0 means DefaultSegmentBytes.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.GroupWindow == 0 {
		o.GroupWindow = DefaultGroupWindow
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Log is an append-only write-ahead log over a directory of segments. Append
// and Sync are safe for concurrent use; Rotate, TruncateThrough, and Close
// serialize against both.
type Log struct {
	opts Options

	// mu guards the appending side: the open segment file, the user-space
	// buffer, and the LSN cursor.
	mu       sync.Mutex
	f        *os.File
	buf      []byte // appended frames not yet written to f
	scratch  []byte // per-batch framing area, reused across Appends
	segStart uint64 // first LSN of the open segment
	segSize  int64  // bytes written+buffered in the open segment
	appended uint64 // LSN of the last appended record (0 = none yet)
	closed   bool

	// commit is the group-commit state, a separate lock domain so riders
	// waiting on an fsync never block appenders.
	commit struct {
		mu      sync.Mutex
		cond    *sync.Cond
		leading bool   // an fsync leader is at work
		durable uint64 // highest LSN known stable
		err     error  // sticky: an fsync failure poisons the log
	}

	// Counters, atomically published for Stats.
	nRecords  atomic.Uint64
	nBytes    atomic.Uint64
	nFsyncs   atomic.Uint64
	nSyncs    atomic.Uint64 // Sync calls (leaders + riders + already-durable)
	nRotates  atomic.Uint64
	nSegments atomic.Int64
}

// Stats is a point-in-time snapshot of the log's counters, the source of the
// ucat_ingest_wal_* metrics.
type Stats struct {
	AppendedLSN uint64 // last assigned LSN
	DurableLSN  uint64 // last LSN known stable
	Records     uint64 // records appended this process
	Bytes       uint64 // framed bytes appended this process
	Fsyncs      uint64 // fsync barriers issued
	SyncCalls   uint64 // Sync invocations (SyncCalls − Fsyncs ≈ group riders)
	Rotations   uint64 // segment rotations this process
	Segments    int64  // segment files currently on disk
}

// Open creates or reuses the log directory and starts a fresh segment whose
// first record will carry nextLSN. Callers replay the directory first
// (Replay) and pass lastLSN+1; starting a new segment rather than appending
// to the old one means a torn tail from the crash is never written after
// (DURABILITY.md §7 step 4).
func Open(opts Options, nextLSN uint64) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if nextLSN == 0 {
		nextLSN = 1
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts}
	l.commit.cond = sync.NewCond(&l.commit.mu)
	l.commit.durable = nextLSN - 1
	l.appended = nextLSN - 1
	if err := l.openSegment(nextLSN); err != nil {
		return nil, err
	}
	if segs, err := listSegments(opts.Dir); err == nil {
		l.nSegments.Store(int64(len(segs)))
	}
	return l, nil
}

// segmentName renders the canonical segment file name for a first LSN.
func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstLSN)
}

// parseSegmentName inverts segmentName; ok is false for foreign files.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// openSegment creates the segment file for firstLSN and writes its header.
// A leftover file of the same name can only exist if a previous process
// crashed before making any record of this LSN durable — replay just told us
// the stream ends before firstLSN — so it is truncated, not appended to.
func (l *Log) openSegment(firstLSN uint64) error {
	path := filepath.Join(l.opts.Dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	h := encodeHeader(firstLSN)
	if _, err := f.Write(h[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	// The file's existence must survive a crash as soon as its records do:
	// fsync the directory once at creation, so the first record fsync has a
	// durable file to land in.
	if err := syncDir(l.opts.Dir); err != nil {
		_ = f.Close()
		return err
	}
	l.f = f
	l.segStart = firstLSN
	l.segSize = headerLen
	l.nSegments.Add(1)
	return nil
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing directory: %w", err)
	}
	return nil
}

// Append frames recs into the log's buffer and assigns them consecutive
// LSNs, returning the first and last. The records are NOT durable on return
// — nothing has necessarily reached the file, let alone the platter. Callers
// must Sync(last) before acknowledging the operations to anyone
// (DURABILITY.md §4; the ucatlint walsync check audits this).
func (l *Log) Append(recs []Record) (first, last uint64, err error) {
	if len(recs) == 0 {
		return 0, 0, fmt.Errorf("%w: empty batch", ErrBadRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, ErrClosed
	}
	if err := l.syncErr(); err != nil {
		return 0, 0, err
	}
	// Frame the whole batch into the scratch buffer first: a batch either
	// appends entirely or not at all, so a bad record cannot leave half a
	// batch assigned LSNs — and a rotation below flushes only what was
	// appended before this batch.
	l.scratch = l.scratch[:0]
	for _, r := range recs {
		l.scratch, err = appendFrame(l.scratch, r)
		if err != nil {
			return 0, 0, err
		}
	}
	grew := int64(len(l.scratch))
	if l.segSize > headerLen && l.segSize+grew > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, 0, err
		}
	}
	l.buf = append(l.buf, l.scratch...)
	first = l.appended + 1
	last = l.appended + uint64(len(recs))
	l.appended = last
	l.segSize += grew
	l.nRecords.Add(uint64(len(recs)))
	l.nBytes.Add(uint64(grew))
	return first, last, nil
}

// syncErr reads the sticky fsync error. Lock order: commit.mu nests inside
// nothing; mu is never taken under it.
func (l *Log) syncErr() error {
	l.commit.mu.Lock()
	defer l.commit.mu.Unlock()
	return l.commit.err
}

// flushLocked writes the user-space buffer to the segment file. Caller holds
// mu. The buffer is consumed even on error: a short write leaves the tail of
// the segment torn exactly as a crash would, and the sticky sync error stops
// anyone acknowledging past it.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	_, err := l.f.Write(l.buf)
	l.buf = l.buf[:0]
	if err != nil {
		return fmt.Errorf("wal: writing segment: %w", err)
	}
	return nil
}

// Sync blocks until every record up to lsn is durable under the configured
// fsync mode, or returns the log's sticky error. Concurrent callers
// coalesce: one leads the fsync, the rest wait on its barrier — the
// group-commit protocol of DURABILITY.md §4.
func (l *Log) Sync(lsn uint64) error {
	l.nSyncs.Add(1)
	if l.opts.Fsync == FsyncNever {
		// No stable-storage promise: push bytes to the OS and return. A
		// process crash loses nothing; a machine crash may.
		l.mu.Lock()
		err := l.flushLocked()
		l.mu.Unlock()
		if err != nil {
			l.poison(err)
			return err
		}
		l.advanceDurable(lsn)
		return nil
	}
	s := &l.commit
	s.mu.Lock()
	for {
		// Already-durable wins over a poisoned log: a commit whose records
		// reached stable storage before the failure is honestly durable.
		if s.durable >= lsn {
			s.mu.Unlock()
			return nil
		}
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return err
		}
		if s.leading {
			// Ride: a leader is already headed for the platter; its barrier
			// will cover lsn or we loop and lead the next one.
			s.cond.Wait()
			continue
		}
		s.leading = true
		s.mu.Unlock()
		l.lead()
		s.mu.Lock()
	}
}

// lead runs one fsync barrier as the group leader: optionally wait out the
// coalescing window so concurrent appenders board, then flush and fsync, then
// publish the new durable LSN and wake every rider.
func (l *Log) lead() {
	if l.opts.Fsync == FsyncGroup && l.opts.GroupWindow > 0 {
		time.Sleep(l.opts.GroupWindow)
	}
	l.mu.Lock()
	target := l.appended
	err := l.flushLocked()
	f := l.f
	l.mu.Unlock()
	if err == nil {
		err = f.Sync()
		if err != nil {
			err = fmt.Errorf("wal: fsync: %w", err)
		}
		l.nFsyncs.Add(1)
	}
	s := &l.commit
	s.mu.Lock()
	s.leading = false
	if err != nil {
		// Sticky by design: after a failed fsync the kernel may have dropped
		// the dirty pages, so no later fsync can honestly promise the lost
		// range. Every current and future commit fails.
		if s.err == nil {
			s.err = err
		}
	} else if target > s.durable {
		s.durable = target
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// poison records a fatal log error for all future commits.
func (l *Log) poison(err error) {
	s := &l.commit
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// advanceDurable lifts the durable LSN to at least lsn (FsyncNever
// bookkeeping, where "durable" means handed to the OS).
func (l *Log) advanceDurable(lsn uint64) {
	s := &l.commit
	s.mu.Lock()
	if lsn > s.durable {
		s.durable = lsn
	}
	s.mu.Unlock()
}

// DurableLSN returns the highest LSN known stable.
func (l *Log) DurableLSN() uint64 {
	s := &l.commit
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durable
}

// Rotate closes the open segment and starts a new one, so TruncateThrough
// can retire everything before the rotation point. The open segment's
// buffered bytes are flushed first.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		l.poison(err)
		return err
	}
	if err := l.f.Sync(); err != nil {
		err = fmt.Errorf("wal: fsync on rotate: %w", err)
		l.poison(err)
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	l.nRotates.Add(1)
	return l.openSegment(l.appended + 1)
}

// TruncateThrough deletes every closed segment whose records all have
// LSN ≤ lsn — the checkpointer calls this after its snapshot is durable
// (DURABILITY.md §6). The open segment is never deleted. Returns the number
// of segments removed.
func (l *Log) TruncateThrough(lsn uint64) (int, error) {
	l.mu.Lock()
	cur := l.segStart
	dir := l.opts.Dir
	l.mu.Unlock()
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, seg := range segs {
		if seg.first >= cur {
			break
		}
		// A closed segment's records end where the next segment begins.
		var end uint64
		if i+1 < len(segs) {
			end = segs[i+1].first - 1
		} else {
			end = cur - 1
		}
		if end > lsn {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			return removed, fmt.Errorf("wal: %w", err)
		}
		removed++
		l.nSegments.Add(-1)
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	appended := l.appended
	l.mu.Unlock()
	return Stats{
		AppendedLSN: appended,
		DurableLSN:  l.DurableLSN(),
		Records:     l.nRecords.Load(),
		Bytes:       l.nBytes.Load(),
		Fsyncs:      l.nFsyncs.Load(),
		SyncCalls:   l.nSyncs.Load(),
		Rotations:   l.nRotates.Load(),
		Segments:    l.nSegments.Load(),
	}
}

// Close flushes, makes the log durable under its mode, and closes the
// segment file. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.flushLocked()
	if err == nil && l.opts.Fsync != FsyncNever {
		if serr := l.f.Sync(); serr != nil {
			err = fmt.Errorf("wal: fsync on close: %w", serr)
		}
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	appended := l.appended
	l.mu.Unlock()
	if err == nil {
		l.advanceDurable(appended)
	}
	l.poison(ErrClosed)
	return err
}

// segment is one on-disk segment file.
type segment struct {
	path  string
	first uint64
}

// listSegments returns the directory's segments sorted by first LSN. A
// missing directory is an empty log, not an error.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, e.Name()), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// Benchmarks regenerating the paper's evaluation. One benchmark per figure
// (Figures 4–10 of "Indexing Uncertain Categorical Data", ICDE 2007) plus
// ablation benches for this repository's design knobs and microbenchmarks
// for the core operations.
//
// Figure benchmarks report each data series' mean disk I/Os per query as a
// custom metric. They default to 5% of the paper's dataset sizes so a
// full `go test -bench=.` stays tractable; set UCAT_BENCH_SCALE=1.0 (and
// preferably -benchtime=1x) to run at paper scale, or use cmd/ucatbench,
// which prints the full tables.
package ucat_test

import (
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/exp"
	"ucat/internal/invidx"
	"ucat/internal/pager"
	"ucat/internal/pdrtree"
	"ucat/internal/uda"
)

// benchParams reads the benchmark scale and worker count from the
// environment. UCAT_BENCH_WORKERS fans each data point's queries out to N
// goroutines (per-query pool views keep the I/O metrics identical).
func benchParams() exp.Params {
	scale := 0.05
	if s := os.Getenv("UCAT_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	workers := 1
	if s := os.Getenv("UCAT_BENCH_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			workers = v
		}
	}
	return exp.Params{Scale: scale, Queries: 10, Seed: 1, Workers: workers}
}

// benchFigure runs a figure generator and reports every series' mean I/Os
// per query.
func benchFigure(b *testing.B, run func(exp.Params) (*exp.Figure, error)) {
	b.Helper()
	p := benchParams()
	for i := 0; i < b.N; i++ {
		fig, err := run(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range fig.Series {
				var sum float64
				for _, pt := range s.Points {
					sum += pt.IOs
				}
				metric := strings.ReplaceAll(s.Label, " ", "_") + "-io/q"
				b.ReportMetric(sum/float64(len(s.Points)), metric)
			}
		}
	}
}

// Figure benchmarks — one per table/figure in the paper's evaluation.

func BenchmarkFig4DivergenceMeasures(b *testing.B) { benchFigure(b, exp.Fig4) }
func BenchmarkFig5Synthetic(b *testing.B)          { benchFigure(b, exp.Fig5) }
func BenchmarkFig6CRM1(b *testing.B)               { benchFigure(b, exp.Fig6) }
func BenchmarkFig7CRM2(b *testing.B)               { benchFigure(b, exp.Fig7) }
func BenchmarkFig8DatasetSize(b *testing.B)        { benchFigure(b, exp.Fig8) }
func BenchmarkFig9DomainSize(b *testing.B)         { benchFigure(b, exp.Fig9) }
func BenchmarkFig10SplitAlgorithm(b *testing.B)    { benchFigure(b, exp.Fig10) }

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationInvStrategies(b *testing.B)   { benchFigure(b, exp.AblationInvStrategies) }
func BenchmarkAblationInsertCriterion(b *testing.B) { benchFigure(b, exp.AblationInsertCriterion) }
func BenchmarkAblationCompression(b *testing.B)     { benchFigure(b, exp.AblationCompression) }
func BenchmarkAblationBufferPool(b *testing.B)      { benchFigure(b, exp.AblationBufferPool) }

// Parallel query-path benchmarks.

// BenchmarkFig4Workers regenerates Figure 4 with the query fan-out sized to
// GOMAXPROCS — the headline wall-clock number for the parallel harness
// (compare against BenchmarkFig4DivergenceMeasures, which honours
// UCAT_BENCH_WORKERS and defaults to sequential).
func BenchmarkFig4Workers(b *testing.B) {
	p := benchParams()
	p.Workers = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig4(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPETQParallelReaders drives concurrent PETQ queries, one private
// 100-frame pool view per goroutine over the shared store — the per-worker
// configuration the exp harness uses.
func BenchmarkPETQParallelReaders(b *testing.B) {
	rel, d := builtRelation(b, core.Options{Kind: core.PDRTree})
	r := rand.New(rand.NewSource(8))
	queries := make([]uda.UDA, 64)
	for i := range queries {
		queries[i] = d.Query(r)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		view := pager.NewPool(rel.Pool().Store(), rel.Pool().Frames())
		rd := rel.Reader(view)
		i := 0
		for pb.Next() {
			if _, err := rd.PETQ(queries[i%len(queries)], 0.1); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// Microbenchmarks for the core operations.

func benchInsert(b *testing.B, kind core.Kind) {
	b.Helper()
	rel, err := core.NewRelation(core.Options{Kind: kind, PoolFrames: 4096})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	tuples := make([]uda.UDA, 10000)
	for i := range tuples {
		tuples[i] = uda.Random(r, 50, 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rel.Insert(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertInverted(b *testing.B) { benchInsert(b, core.InvertedIndex) }
func BenchmarkInsertPDRTree(b *testing.B)  { benchInsert(b, core.PDRTree) }
func BenchmarkInsertHeapOnly(b *testing.B) { benchInsert(b, core.ScanOnly) }

// builtRelation prepares a 10k-tuple relation for query benchmarks.
func builtRelation(b *testing.B, opts core.Options) (*core.Relation, *dataset.Dataset) {
	b.Helper()
	opts.PoolFrames = 4096
	rel, err := core.NewRelation(opts)
	if err != nil {
		b.Fatal(err)
	}
	d := dataset.Gen3(1, 10000, 50)
	for _, u := range d.Tuples {
		if _, err := rel.Insert(u); err != nil {
			b.Fatal(err)
		}
	}
	if err := rel.Pool().Resize(100); err != nil {
		b.Fatal(err)
	}
	return rel, d
}

func benchPETQ(b *testing.B, opts core.Options) {
	b.Helper()
	rel, d := builtRelation(b, opts)
	r := rand.New(rand.NewSource(2))
	queries := make([]uda.UDA, 64)
	for i := range queries {
		queries[i] = d.Query(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rel.PETQ(queries[i%len(queries)], 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPETQScan(b *testing.B) { benchPETQ(b, core.Options{Kind: core.ScanOnly}) }
func BenchmarkPETQInverted(b *testing.B) {
	benchPETQ(b, core.Options{Kind: core.InvertedIndex, InvStrategy: invidx.HighestProbFirst})
}
func BenchmarkPETQInvertedBruteForce(b *testing.B) {
	benchPETQ(b, core.Options{Kind: core.InvertedIndex, InvStrategy: invidx.BruteForce})
}
func BenchmarkPETQPDRTree(b *testing.B) { benchPETQ(b, core.Options{Kind: core.PDRTree}) }

func benchTopK(b *testing.B, opts core.Options) {
	b.Helper()
	rel, d := builtRelation(b, opts)
	r := rand.New(rand.NewSource(3))
	queries := make([]uda.UDA, 64)
	for i := range queries {
		queries[i] = d.Query(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rel.TopK(queries[i%len(queries)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKInverted(b *testing.B) {
	benchTopK(b, core.Options{Kind: core.InvertedIndex, InvStrategy: invidx.HighestProbFirst})
}
func BenchmarkTopKPDRTree(b *testing.B) { benchTopK(b, core.Options{Kind: core.PDRTree}) }

func BenchmarkDSTQPDRTree(b *testing.B) {
	rel, d := builtRelation(b, core.Options{Kind: core.PDRTree})
	r := rand.New(rand.NewSource(4))
	queries := make([]uda.UDA, 64)
	for i := range queries {
		queries[i] = d.Query(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rel.DSTQ(queries[i%len(queries)], 0.3, uda.L1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPDRCompressedInsert(b *testing.B) {
	rel, err := core.NewRelation(core.Options{
		Kind:       core.PDRTree,
		PoolFrames: 4096,
		PDR:        pdrtree.Config{Compression: pdrtree.SignatureCompression, Buckets: 64},
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	tuples := make([]uda.UDA, 10000)
	for i := range tuples {
		tuples[i] = uda.Random(r, 500, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rel.Insert(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBulkLoad(b *testing.B, kind core.Kind) {
	b.Helper()
	r := rand.New(rand.NewSource(7))
	values := make([]uda.UDA, 10000)
	for i := range values {
		values[i] = uda.Random(r, 50, 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BulkLoad(core.Options{Kind: kind, PoolFrames: 4096}, values); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoadInverted(b *testing.B) { benchBulkLoad(b, core.InvertedIndex) }
func BenchmarkBulkLoadPDRTree(b *testing.B)  { benchBulkLoad(b, core.PDRTree) }

func BenchmarkEqualityProb(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	us := make([]uda.UDA, 256)
	for i := range us {
		us[i] = uda.Random(r, 50, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uda.EqualityProb(us[i%256], us[(i+1)%256])
	}
}

module ucat

go 1.22

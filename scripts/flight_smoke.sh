#!/usr/bin/env bash
# flight_smoke.sh — end-to-end smoke of the request flight recorder.
#
# Boots a real ucatd with -slowms 0 (keep every span tree) and a JSON
# request log, fires one query of every kind plus a deliberate error, and
# then asserts the observability contract from the outside:
#
#   1. /debug/requests returns every request, each with a non-empty span tree;
#   2. /debug/requests/<id> and the ?kind/?outcome filters work;
#   3. /v1/version and /debug/build report the build identity;
#   4. ucattop -check validates /metrics and finds the ucat_serve_flight
#      family; ucattop -once renders a frame against the live server;
#   5. the JSON request log carries trace_id lines matching the records.
#
# Used by CI's flight-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d /tmp/ucat-flight-smoke.XXXXXX)
trap 'kill "$UCATD_PID" 2>/dev/null || true; rm -rf "$dir"' EXIT

go build -o "$dir/" ./cmd/ucatgen ./cmd/ucatd ./cmd/ucattop

"$dir/ucatgen" -dataset uniform -n 2000 -index pdr -save "$dir/rel.ucat"

"$dir/ucatd" -load "$dir/rel.ucat" -addr 127.0.0.1:0 -addrfile "$dir/addr" \
    -slowms 0 -logformat json -logsample 1 >"$dir/ucatd.log" 2>&1 &
UCATD_PID=$!
for _ in $(seq 100); do [ -s "$dir/addr" ] && break; sleep 0.1; done
[ -s "$dir/addr" ] || { echo "flight_smoke: ucatd never wrote $dir/addr" >&2; cat "$dir/ucatd.log" >&2; exit 1; }
ADDR=$(cat "$dir/addr")

# One query per kind (the server's closed kind set), plus one 400 that the
# recorder must NOT see (it never enters a flight).
curl -sf "http://$ADDR/v1/query" -d '{"kind":"petq","query":"0:0.6,1:0.4","tau":0.2}' >/dev/null
curl -sf "http://$ADDR/v1/query" -d '{"kind":"topk","query":"0:0.6,1:0.4","k":3}' >/dev/null
curl -sf "http://$ADDR/v1/query" -d '{"kind":"window","query":"0:0.6,1:0.4","c":1,"tau":0.1}' >/dev/null
curl -sf "http://$ADDR/v1/query" -d '{"kind":"windowtopk","query":"0:0.6,1:0.4","c":1,"k":3}' >/dev/null
curl -sf "http://$ADDR/v1/query" -d '{"kind":"dstq","query":"0:0.6,1:0.4","td":0.5,"div":"L1"}' >/dev/null
curl -sf "http://$ADDR/v1/query" -d '{"kind":"neighbor","query":"0:0.6,1:0.4","k":2,"div":"L1"}' >/dev/null
curl -s -o /dev/null "http://$ADDR/v1/query" -d '{"kind":"bogus"}' # 400: malformed, never recorded

# Build identity endpoints.
curl -sf "http://$ADDR/v1/version" | grep -q '"go_version"'
curl -sf "http://$ADDR/debug/build" | grep -q '"go_version"'

# Flight recorder contract: 6 records, every one with a span tree.
curl -sf "http://$ADDR/debug/requests" >"$dir/requests.json"
python3 - "$dir/requests.json" <<'EOF'
import json, sys
recs = json.load(open(sys.argv[1]))
assert len(recs) == 6, f"want 6 flight records, got {len(recs)}"
for r in recs:
    assert r["outcome"] == "ok", f'trace {r["id"]}: outcome {r["outcome"]}'
    assert r.get("tree"), f'trace {r["id"]} ({r["kind"]}): empty span tree under -slowms 0'
    assert f'serve.{r["kind"]}' in r["tree"], f'trace {r["id"]}: tree missing serve.{r["kind"]} root'
kinds = {r["kind"] for r in recs}
assert kinds == {"petq","topk","window","windowtopk","dstq","neighbor"}, f"kinds: {kinds}"
print(f"flight records OK: {len(recs)} records, all with span trees")
EOF

# Filters and by-id lookup.
curl -sf "http://$ADDR/debug/requests?kind=petq" | python3 -c 'import json,sys; rs=json.load(sys.stdin); assert len(rs)==1 and rs[0]["kind"]=="petq", rs'
curl -sf "http://$ADDR/debug/requests?outcome=slow" | python3 -c 'import json,sys; rs=json.load(sys.stdin); assert len(rs)==6, f"slow ring: {len(rs)}"'
first_id=$(python3 -c 'import json,sys; print(min(r["id"] for r in json.load(open(sys.argv[1]))))' "$dir/requests.json")
curl -sf "http://$ADDR/debug/requests/$first_id" | grep -q '"tree"'

# Flight metrics exported and /metrics machine-readable (ucattop -check),
# then a rendered dashboard frame against the live server.
"$dir/ucattop" -addr "$ADDR" -check -require ucat_serve_flight,ucat_serve_latency_ns
"$dir/ucattop" -addr "$ADDR" -once | grep -q '^flight: completed 6'

# Request log: every success logged (logsample 1) with the recorder's IDs.
kill -TERM "$UCATD_PID" && wait "$UCATD_PID" || true
grep -c '"trace_id"' "$dir/ucatd.log" | grep -qx 6
grep -q '"msg":"ucatd serving"' "$dir/ucatd.log"

echo "flight-smoke OK"

#!/usr/bin/env bash
# bench_serve.sh — the serving-layer benchmark behind `make bench-serve`.
#
# Builds a gen3 snapshot, starts ucatd (with the PETQ micro-batcher enabled
# so the coalescing path is exercised under load), sweeps closed-loop client
# counts and open-loop offered rates with ucatload, runs the served-vs-direct
# determinism check, and writes BENCH_serve.json. OPERATIONS.md §8 explains
# how to read the document.
#
# Tunables (environment):
#   UCAT_SERVE_N        tuples in the served relation   (default 20000)
#   UCAT_SERVE_DUR      measurement duration per level  (default 3s)
#   UCAT_SERVE_CLIENTS  closed-loop sweep               (default 1,4,16)
#   UCAT_SERVE_RATES    open-loop sweep, queries/sec    (default 500,2000,8000)
#   UCAT_SERVE_OUT      output path                     (default BENCH_serve.json)
#   UCAT_SERVE_FRAMES   TOTAL shared-pool frames        (default 0 = workers x 100)
#   UCAT_SERVE_STRIPES  shared-pool lock stripes        (default 0 = 2 x workers)
#   UCAT_SERVE_POLICY   eviction policy clock|lru|gdsf  (default clock)
set -euo pipefail
cd "$(dirname "$0")/.."

N=${UCAT_SERVE_N:-20000}
DUR=${UCAT_SERVE_DUR:-3s}
CLIENTS=${UCAT_SERVE_CLIENTS:-1,4,16}
RATES=${UCAT_SERVE_RATES:-500,2000,8000}
OUT=${UCAT_SERVE_OUT:-BENCH_serve.json}
FRAMES=${UCAT_SERVE_FRAMES:-0}
STRIPES=${UCAT_SERVE_STRIPES:-0}
POLICY=${UCAT_SERVE_POLICY:-clock}
DOMAIN=50

work=$(mktemp -d)
PID=""
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null; rm -rf "$work"' EXIT

go build -o "$work/" ./cmd/ucatgen ./cmd/ucatd ./cmd/ucatload

"$work/ucatgen" -dataset gen3 -n "$N" -domain "$DOMAIN" -index inverted \
    -save "$work/rel.ucat" >/dev/null

"$work/ucatd" -load "$work/rel.ucat" -addr 127.0.0.1:0 -addrfile "$work/addr" \
    -frames "$FRAMES" -stripes "$STRIPES" -policy "$POLICY" \
    -batchwindow 200us >"$work/ucatd.log" 2>&1 &
PID=$!
for _ in $(seq 100); do [ -s "$work/addr" ] && break; sleep 0.1; done
[ -s "$work/addr" ] || { echo "bench_serve: ucatd never became ready" >&2; cat "$work/ucatd.log" >&2; exit 1; }
ADDR=$(cat "$work/addr")

"$work/ucatload" -addr "$ADDR" -clients "$CLIENTS" -rates "$RATES" -dur "$DUR" \
    -domain "$DOMAIN" -load "$work/rel.ucat" -check 50 -out "$OUT"

kill -TERM "$PID"
wait "$PID" || true
PID=""
echo "bench-serve: wrote $OUT"

#!/usr/bin/env bash
# bench_serve.sh — the serving-layer benchmark behind `make bench-serve`.
#
# Builds a gen3 snapshot and measures the server along three dimensions into
# one BENCH_serve.json (OPERATIONS.md §8 explains how to read it):
#
#   1. Protocol (per sweep): the same workload over the JSON API and the
#      binary ucatwire framing, closed-loop client counts and open-loop
#      offered rates each. The headline PETQ sweep at a permissive tau is
#      where the zero-alloc binary encode path shows its throughput edge
#      (a permissive tau means wide answers, so response encoding is the
#      dominant per-request cost the protocols differ on).
#   2. Batching: the mixed petq/topk/window sweep runs against a server with
#      the micro-batcher enabled AND against one with it disabled (two ucatd
#      boots, merged with ucatload -merge), so the coalescing win for every
#      batchable kind is on record.
#   3. Determinism: the batchable kinds replayed direct vs JSON-served vs
#      binary-served (the served pair concurrently, so probes coalesce on
#      the batching server) — the run fails on a single differing answer.
#
# The default relation is deliberately small (the quickstart/smoke scale):
# this benchmark isolates the SERVING layer — protocol encode/decode,
# admission, batching — so queries must be cheap enough that per-request
# overhead is visible. Index-scaling curves live in ucatbench, not here;
# raise UCAT_SERVE_N to move the bottleneck back into traversal.
#
# Tunables (environment):
#   UCAT_SERVE_N        tuples in the served relation   (default 5000)
#   UCAT_SERVE_DUR      measurement duration per level  (default 3s)
#   UCAT_SERVE_CLIENTS  closed-loop sweep               (default 1,4,16)
#   UCAT_SERVE_RATES    open-loop sweep, queries/sec    (default 500,2000,8000)
#   UCAT_SERVE_TAU      PETQ threshold for the workload (default 0.02)
#   UCAT_SERVE_HOTSET   replayed query pool size        (default 8)
#   UCAT_SERVE_OUT      output path                     (default BENCH_serve.json)
#   UCAT_SERVE_FRAMES   TOTAL shared-pool frames        (default 0 = workers x 100)
#   UCAT_SERVE_STRIPES  shared-pool lock stripes        (default 0 = 2 x workers)
#   UCAT_SERVE_POLICY   eviction policy clock|lru|gdsf  (default clock)
set -euo pipefail
cd "$(dirname "$0")/.."

N=${UCAT_SERVE_N:-5000}
DUR=${UCAT_SERVE_DUR:-3s}
CLIENTS=${UCAT_SERVE_CLIENTS:-1,4,16}
RATES=${UCAT_SERVE_RATES:-500,2000,8000}
TAU=${UCAT_SERVE_TAU:-0.02}
HOTSET=${UCAT_SERVE_HOTSET:-8}
OUT=${UCAT_SERVE_OUT:-BENCH_serve.json}
FRAMES=${UCAT_SERVE_FRAMES:-0}
STRIPES=${UCAT_SERVE_STRIPES:-0}
POLICY=${UCAT_SERVE_POLICY:-clock}
DOMAIN=50

work=$(mktemp -d)
PID=""
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null; rm -rf "$work"' EXIT

go build -o "$work/" ./cmd/ucatgen ./cmd/ucatd ./cmd/ucatload

"$work/ucatgen" -dataset gen3 -n "$N" -domain "$DOMAIN" -index inverted \
    -save "$work/rel.ucat" >/dev/null

# boot_ucatd <extra flags...> — start a server and wait for its address.
boot_ucatd() {
  : >"$work/addr"
  "$work/ucatd" -load "$work/rel.ucat" -addr 127.0.0.1:0 -addrfile "$work/addr" \
      -frames "$FRAMES" -stripes "$STRIPES" -policy "$POLICY" \
      "$@" >>"$work/ucatd.log" 2>&1 &
  PID=$!
  for _ in $(seq 100); do [ -s "$work/addr" ] && break; sleep 0.1; done
  [ -s "$work/addr" ] || { echo "bench_serve: ucatd never became ready" >&2; cat "$work/ucatd.log" >&2; exit 1; }
  ADDR=$(cat "$work/addr")
}

stop_ucatd() {
  kill -TERM "$PID"
  wait "$PID" || true
  PID=""
}

# Pass 1 — batching ON. The PETQ headline sweep (both protocols, full
# closed/open grid, determinism check), then the mixed batchable-kind sweep.
boot_ucatd -batchwindow 200us
"$work/ucatload" -addr "$ADDR" -proto json,binary -kinds petq \
    -tau "$TAU" -hotset "$HOTSET" -clients "$CLIENTS" -rates "$RATES" \
    -dur "$DUR" -domain "$DOMAIN" -batching \
    -load "$work/rel.ucat" -check 50 -out "$OUT"
"$work/ucatload" -addr "$ADDR" -proto json,binary -kinds petq,topk,window \
    -tau "$TAU" -hotset "$HOTSET" -clients "$CLIENTS" \
    -dur "$DUR" -domain "$DOMAIN" -batching -merge -out "$OUT"
stop_ucatd

# Pass 2 — batching OFF: the same mixed sweep, merged into the document, so
# the batcher's contribution is the on/off delta at equal everything else.
boot_ucatd
"$work/ucatload" -addr "$ADDR" -proto json,binary -kinds petq,topk,window \
    -tau "$TAU" -hotset "$HOTSET" -clients "$CLIENTS" \
    -dur "$DUR" -domain "$DOMAIN" -merge -out "$OUT"
stop_ucatd

echo "bench-serve: wrote $OUT"

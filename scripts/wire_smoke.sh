#!/usr/bin/env bash
# wire_smoke.sh — end-to-end smoke of the binary wire protocol behind
# `make wire-smoke`.
#
# Boots ucatd with micro-batching enabled, then drives a mixed-kind sweep —
# every query kind the API speaks — over BOTH protocols with a shared hotset,
# so the batcher coalesces probes while the sweep runs. ucatload's
# determinism check then replays the batchable kinds three ways (direct,
# JSON, binary, the served pair concurrently) and exits non-zero on a single
# differing answer; the assertions below additionally require that both
# protocol sweeps actually completed traffic without transport errors and
# that the server negotiated both content types.
set -euo pipefail
cd "$(dirname "$0")/.."

N=${UCAT_WIRE_N:-5000}
DUR=${UCAT_WIRE_DUR:-1s}
DOMAIN=50

work=$(mktemp -d)
PID=""
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null; rm -rf "$work"' EXIT

go build -o "$work/" ./cmd/ucatgen ./cmd/ucatd ./cmd/ucatload

"$work/ucatgen" -dataset gen3 -n "$N" -domain "$DOMAIN" -index inverted \
    -save "$work/rel.ucat" >/dev/null

"$work/ucatd" -load "$work/rel.ucat" -addr 127.0.0.1:0 -addrfile "$work/addr" \
    -batchwindow 200us >"$work/ucatd.log" 2>&1 &
PID=$!
for _ in $(seq 100); do [ -s "$work/addr" ] && break; sleep 0.1; done
[ -s "$work/addr" ] || { echo "wire_smoke: ucatd never became ready" >&2; cat "$work/ucatd.log" >&2; exit 1; }
ADDR=$(cat "$work/addr")

"$work/ucatload" -addr "$ADDR" -proto json,binary \
    -kinds petq,topk,window,windowtopk,dstq,neighbor -hotset 8 \
    -clients 2,4 -dur "$DUR" -domain "$DOMAIN" \
    -load "$work/rel.ucat" -check 25 -batching -out "$work/wire_smoke.json"

python3 - "$work/wire_smoke.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
sweeps = {s["proto"]: s for s in doc.get("sweeps", [])}
assert set(sweeps) == {"json", "binary"}, f"want one sweep per protocol, got {sorted(sweeps)}"
for proto, s in sweeps.items():
    levels = s.get("closed_loop", []) + s.get("open_loop", [])
    assert levels, f"{proto}: no load levels"
    for l in levels:
        assert l["completed"] > 0, f"{proto}: a load level completed nothing"
        assert l["errors"] == 0, f"{proto}: {l['errors']} transport/protocol errors"
chk = doc["determinism"]
assert chk["mismatches"] == 0, "served answers diverged"
per = chk["per_kind"]
assert set(per) == {"petq", "topk", "window"}, f"determinism kinds: {sorted(per)}"
assert all(per[k]["queries"] > 0 for k in per), "a determinism kind ran no queries"
print("wire smoke OK: both protocols served identical answers under batching")
EOF

# The server must have negotiated both content types: the per-protocol
# counters are part of the /metrics contract.
curl -fsS "http://$ADDR/metrics" | tee "$work/metrics.prom" | grep -E \
    '^ucat_serve_proto_requests_total_(json|binary) ' | awk '$2 == 0 { bad=1 }
    END { exit bad }' || {
  echo "wire_smoke: a protocol counter stayed at zero" >&2
  grep '^ucat_serve_proto' "$work/metrics.prom" >&2 || true
  exit 1
}

kill -TERM "$PID"
wait "$PID" || true
PID=""
echo "wire-smoke: OK"

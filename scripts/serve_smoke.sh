#!/usr/bin/env bash
# serve_smoke.sh — execute the README serving quickstarts verbatim.
#
# The commands are extracted from README.md (the blocks between the
# `serve-quickstart:begin/end` and `ingest-quickstart:begin/end` markers),
# not duplicated here, so the documented quickstarts cannot rot: if the
# README drifts from reality this script — and CI's serve-smoke job — fails.
# The ingest block reuses the binaries and snapshot the serve block builds,
# so they run in order.
set -euo pipefail
cd "$(dirname "$0")/.."

rm -rf /tmp/ucat-quickstart
mkdir -p /tmp/ucat-quickstart

extract() {
    awk "/<!-- $1:begin -->/{f=1;next} /<!-- $1:end -->/{f=0} f" README.md | sed '/^```/d'
}

for name in serve-quickstart ingest-quickstart; do
    block=$(extract "$name")
    if [ -z "$block" ]; then
        echo "serve_smoke: no $name block found in README.md" >&2
        exit 1
    fi
    echo "--- executing README $name:"
    printf '%s\n' "$block"
    echo "---"
    bash -euo pipefail -c "$block"
done
echo "serve-smoke OK"

#!/usr/bin/env bash
# serve_smoke.sh — execute the README serving quickstart verbatim.
#
# The commands are extracted from README.md (the block between the
# `serve-quickstart:begin/end` markers), not duplicated here, so the
# documented quickstart cannot rot: if the README drifts from reality this
# script — and CI's serve-smoke job — fails.
set -euo pipefail
cd "$(dirname "$0")/.."

rm -rf /tmp/ucat-quickstart
mkdir -p /tmp/ucat-quickstart

block=$(awk '/<!-- serve-quickstart:begin -->/{f=1;next} /<!-- serve-quickstart:end -->/{f=0} f' README.md | sed '/^```/d')
if [ -z "$block" ]; then
    echo "serve_smoke: no serve-quickstart block found in README.md" >&2
    exit 1
fi

echo "--- executing README serving quickstart:"
printf '%s\n' "$block"
echo "---"
bash -euo pipefail -c "$block"
echo "serve-smoke OK"

#!/usr/bin/env bash
# bench_ingest.sh — the write-path benchmark behind `make bench-ingest`.
#
# Sweeps the group-commit coalescing window (-groupcommit) across several
# ucatd boots, each on a fresh WAL directory, and measures sustained durable
# ingest throughput under concurrent query traffic into one BENCH_ingest.json
# (ucatload -merge accumulates one ingest[] entry per window; OPERATIONS.md
# explains how to read it). The first pass also runs the served-vs-direct
# determinism check mid-ingest — the document is only written green if
# queries stay bit-identical while the indexes absorb writes.
#
# The trade the sweep exposes (DURABILITY.md §4): a wider window boards more
# concurrent appenders per fsync (ops_per_fsync up, throughput up on slow
# disks) at the cost of per-request ack latency; window 0 degenerates to
# fsync-per-racing-group.
#
# Tunables (environment):
#   UCAT_INGEST_N        tuples in the base snapshot    (default 5000)
#   UCAT_INGEST_DUR      measurement duration per pass  (default 3s)
#   UCAT_INGEST_WRITERS  concurrent ingest writers      (default 4)
#   UCAT_INGEST_BATCH    ops per ingest request         (default 8)
#   UCAT_INGEST_CLIENTS  concurrent query clients       (default 4)
#   UCAT_INGEST_WINDOWS  group-commit windows to sweep  (default "-1us 0s 2ms 8ms")
#   UCAT_INGEST_OUT      output path                    (default BENCH_ingest.json)
set -euo pipefail
cd "$(dirname "$0")/.."

N=${UCAT_INGEST_N:-5000}
DUR=${UCAT_INGEST_DUR:-3s}
WRITERS=${UCAT_INGEST_WRITERS:-4}
BATCH=${UCAT_INGEST_BATCH:-8}
CLIENTS=${UCAT_INGEST_CLIENTS:-4}
WINDOWS=${UCAT_INGEST_WINDOWS:--1us 0s 2ms 8ms}
OUT=${UCAT_INGEST_OUT:-BENCH_ingest.json}
DOMAIN=50

work=$(mktemp -d)
PID=""
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null; rm -rf "$work"' EXIT

go build -o "$work/" ./cmd/ucatgen ./cmd/ucatd ./cmd/ucatload

"$work/ucatgen" -dataset gen3 -n "$N" -domain "$DOMAIN" -index inverted \
    -save "$work/rel.ucat" >/dev/null

first=1
for window in $WINDOWS; do
  waldir="$work/wal-$window"
  : >"$work/addr"
  "$work/ucatd" -load "$work/rel.ucat" -addr 127.0.0.1:0 -addrfile "$work/addr" \
      -wal "$waldir" -fsync group -groupcommit "$window" \
      >>"$work/ucatd.log" 2>&1 &
  PID=$!
  for _ in $(seq 100); do [ -s "$work/addr" ] && break; sleep 0.1; done
  [ -s "$work/addr" ] || { echo "bench_ingest: ucatd never became ready" >&2; cat "$work/ucatd.log" >&2; exit 1; }
  ADDR=$(cat "$work/addr")

  args=(-addr "$ADDR" -kinds petq,topk -tau 0.02 -domain "$DOMAIN" \
        -clients "$CLIENTS" -dur "$DUR" -hotset 8 \
        -ingestclients "$WRITERS" -ingestbatch "$BATCH" \
        -ingestlabel "groupcommit=$window" -out "$OUT")
  if [ "$first" = 1 ]; then
    # First pass carries the determinism check, executed while the writers
    # stream: served answers must stay bit-identical to direct execution.
    "$work/ucatload" "${args[@]}" -load "$work/rel.ucat" -check 30
    first=0
  else
    "$work/ucatload" "${args[@]}" -merge
  fi

  kill -TERM "$PID"
  wait "$PID" || true
  PID=""
done

echo "bench-ingest: wrote $OUT"

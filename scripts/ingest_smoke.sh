#!/usr/bin/env bash
# ingest_smoke.sh — end-to-end smoke of the live write path (CI's
# ingest-smoke job; DURABILITY.md is the spec it exercises from the outside).
#
#   1. Baseline: a read-only ucatd under a short query-only ucatload sweep;
#      the closed-loop p99 is the yardstick.
#   2. Live: the same server booted with -wal, measured under the same query
#      sweep WITH concurrent ingest writers streaming at /v1/ingest, the
#      served-vs-direct determinism check running mid-ingest. The query p99
#      must stay within INGEST_P99_FACTOR of the baseline (with an absolute
#      floor so a fast machine's sub-millisecond baseline doesn't make the
#      bound flaky).
#   3. Crash: a distinctive tuple is ingested and acked, the server is killed
#      with SIGKILL (no drain, no checkpoint), rebooted on the same -wal
#      directory, and must recover the exact tuple count and answer a query
#      for the acked tuple (DURABILITY.md §7: replay to the durable LSN).
#
# Tunables (environment):
#   UCAT_INGEST_N         tuples in the base snapshot     (default 5000)
#   UCAT_INGEST_DUR       measurement duration per level  (default 2s)
#   UCAT_INGEST_CLIENTS   query clients                   (default 4)
#   UCAT_INGEST_WRITERS   concurrent ingest writers       (default 2)
#   INGEST_P99_FACTOR     allowed p99 multiplier          (default 5)
#   INGEST_P99_FLOOR_MS   absolute p99 allowance in ms    (default 50)
set -euo pipefail
cd "$(dirname "$0")/.."

N=${UCAT_INGEST_N:-5000}
DUR=${UCAT_INGEST_DUR:-2s}
CLIENTS=${UCAT_INGEST_CLIENTS:-4}
WRITERS=${UCAT_INGEST_WRITERS:-2}
FACTOR=${INGEST_P99_FACTOR:-5}
FLOOR=${INGEST_P99_FLOOR_MS:-50}
DOMAIN=50

work=$(mktemp -d)
PID=""
trap '[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null; rm -rf "$work"' EXIT

go build -o "$work/" ./cmd/ucatgen ./cmd/ucatd ./cmd/ucatload

"$work/ucatgen" -dataset gen3 -n "$N" -domain "$DOMAIN" -index inverted \
    -save "$work/rel.ucat" >/dev/null

boot_ucatd() {
  : >"$work/addr"
  "$work/ucatd" -load "$work/rel.ucat" -addr 127.0.0.1:0 -addrfile "$work/addr" \
      "$@" >>"$work/ucatd.log" 2>&1 &
  PID=$!
  for _ in $(seq 100); do [ -s "$work/addr" ] && break; sleep 0.1; done
  [ -s "$work/addr" ] || { echo "ingest_smoke: ucatd never became ready" >&2; cat "$work/ucatd.log" >&2; exit 1; }
  ADDR=$(cat "$work/addr")
}

# p99_of <ucatload output file> — the first closed-loop p99 in milliseconds.
p99_of() {
  awk 'match($0, /p99 +[0-9.]+ms/) { s = substr($0, RSTART, RLENGTH); sub(/p99 +/, "", s); sub(/ms/, "", s); print s; exit }' "$1"
}

# stat_of <key> — integer field from the /v1/stats ingest section.
stat_of() {
  curl -sf "http://$ADDR/v1/stats" | grep -o "\"$1\": *[0-9]*" | head -1 | grep -o '[0-9]*$'
}

echo "--- pass 1: read-only baseline"
boot_ucatd
"$work/ucatload" -addr "$ADDR" -kinds petq,topk -tau 0.02 -domain "$DOMAIN" \
    -clients "$CLIENTS" -dur "$DUR" -hotset 8 -out "" | tee "$work/baseline.txt"
kill -TERM "$PID"; wait "$PID" || true; PID=""
BASE_P99=$(p99_of "$work/baseline.txt")

echo "--- pass 2: live server, queries + concurrent ingest + determinism check"
boot_ucatd -wal "$work/wal" -fsync group
"$work/ucatload" -addr "$ADDR" -kinds petq,topk -tau 0.02 -domain "$DOMAIN" \
    -clients "$CLIENTS" -dur "$DUR" -hotset 8 \
    -ingestclients "$WRITERS" -ingestbatch 8 -ingestlabel smoke \
    -load "$work/rel.ucat" -check 30 -out "" | tee "$work/live.txt"
LIVE_P99=$(p99_of "$work/live.txt")

awk -v base="$BASE_P99" -v live="$LIVE_P99" -v f="$FACTOR" -v floor="$FLOOR" 'BEGIN {
  bound = base * f; if (bound < floor) bound = floor
  printf "p99 baseline %.2fms, under ingest %.2fms, bound %.2fms\n", base, live, bound
  exit (live <= bound) ? 0 : 1
}' || { echo "ingest_smoke: query p99 regressed beyond the bound under ingest" >&2; exit 1; }

echo "--- pass 3: acked write, SIGKILL, recovery"
ACK=$(curl -sf "http://$ADDR/v1/ingest" \
    -d '{"ops":[{"op":"insert","dist":"4242:0.9,4243:0.1"}]}')
echo "$ACK" | grep -q '"durable": *true' || { echo "ingest_smoke: write not acked durable: $ACK" >&2; exit 1; }
TUPLES_BEFORE=$(stat_of tuples)
DURABLE_BEFORE=$(stat_of durable_lsn)

kill -9 "$PID"; wait "$PID" 2>/dev/null || true; PID=""

boot_ucatd -wal "$work/wal" -fsync group
TUPLES_AFTER=$(stat_of tuples)
DURABLE_AFTER=$(stat_of appended_lsn)
[ "$TUPLES_AFTER" = "$TUPLES_BEFORE" ] || {
  echo "ingest_smoke: recovery lost tuples: $TUPLES_AFTER != $TUPLES_BEFORE" >&2; exit 1; }
[ "$DURABLE_AFTER" -ge "$DURABLE_BEFORE" ] || {
  echo "ingest_smoke: recovery lost acked records: LSN $DURABLE_AFTER < $DURABLE_BEFORE" >&2; exit 1; }
curl -sf "http://$ADDR/v1/query" -d '{"kind":"petq","query":"4242:1","tau":0.5}' \
    | grep -q '"count": *1' || { echo "ingest_smoke: acked tuple missing after recovery" >&2; exit 1; }
kill -TERM "$PID"; wait "$PID" || true; PID=""

echo "ingest-smoke OK (p99 $BASE_P99 ms -> $LIVE_P99 ms; $TUPLES_AFTER tuples survived SIGKILL)"

// Quickstart: model the paper's Table 1(a) — a vehicle-complaints relation
// whose Problem attribute is uncertain — index it, and run the basic
// probabilistic queries.
package main

import (
	"fmt"
	"log"

	"ucat/internal/core"
	"ucat/internal/uda"
)

// The categorical domain of the uncertain Problem attribute.
const (
	Brake uint32 = iota
	Tires
	Trans
	Suspension
	Exhaust
)

var problemNames = []string{"Brake", "Tires", "Trans", "Suspension", "Exhaust"}

func main() {
	// A relation indexed by the PDR-tree (the paper's overall winner). The
	// zero-value config picks KL clustering and bottom-up splits.
	rel, err := core.NewRelation(core.Options{Kind: core.PDRTree})
	if err != nil {
		log.Fatal(err)
	}

	// Table 1(a): each tuple's Problem is a distribution produced by a text
	// classifier over the complaint text.
	cars := []struct {
		make    string
		problem uda.UDA
	}{
		{"Explorer", uda.MustNew(uda.Pair{Item: Brake, Prob: 0.5}, uda.Pair{Item: Tires, Prob: 0.5})},
		{"Camry", uda.MustNew(uda.Pair{Item: Trans, Prob: 0.2}, uda.Pair{Item: Suspension, Prob: 0.8})},
		{"Civic", uda.MustNew(uda.Pair{Item: Exhaust, Prob: 0.4}, uda.Pair{Item: Brake, Prob: 0.6})},
		{"Caravan", uda.MustNew(uda.Pair{Item: Trans, Prob: 1.0})},
	}
	names := make(map[uint32]string)
	for _, c := range cars {
		tid, err := rel.Insert(c.problem)
		if err != nil {
			log.Fatal(err)
		}
		names[tid] = c.make
	}

	// "Report all the tuples which are highly likely to have a brake
	// problem": a probabilistic equality threshold query against the
	// certain value Brake.
	fmt.Println("PETQ: Pr(Problem = Brake) > 0.4")
	matches, err := rel.PETQ(uda.Certain(Brake), 0.4)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  %-10s Pr = %.2f\n", names[m.TID], m.Prob)
	}

	// Top-k: which cars most probably share the Explorer's problem?
	explorer := cars[0].problem
	fmt.Println("\nTop-2 most probably equal to the Explorer's problem:")
	top, err := rel.TopK(explorer, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range top {
		fmt.Printf("  %-10s Pr = %.2f\n", names[m.TID], m.Prob)
	}

	// Distributional similarity (Definition 5): cars whose problem
	// *distribution* resembles the Explorer's, regardless of equality
	// probability.
	fmt.Println("\nDSTQ: L1 distance from Explorer's distribution ≤ 1.0")
	neighbors, err := rel.DSTQ(explorer, 1.0, uda.L1)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range neighbors {
		fmt.Printf("  %-10s L1 = %.2f\n", names[n.TID], n.Dist)
	}

	// Every query above went through the buffer pool; its statistics are
	// the disk I/O counts the paper reports.
	fmt.Printf("\nbuffer pool: %v\n", rel.Pool().Stats())
}

// RFID nurse tracking: the paper's §1 motivating application. Nurses carry
// RFID tags; readers around a hospital report tag sightings, but reader
// range variability and interference make exact positioning impossible, so
// each nurse's location is a probability distribution over rooms.
//
// This example simulates a shift of noisy readings, stores the resulting
// uncertain locations, and answers the queries the deployment needs:
// who was probably in a given room (PETQ), and which pairs of nurses were
// probably co-located (the probabilistic equality threshold join, PETJ).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ucat/internal/core"
	"ucat/internal/uda"
)

const numRooms = 40

// sighting simulates reader evidence for one nurse: the true room plus
// spill-over into adjacent rooms proportional to reader noise.
func sighting(r *rand.Rand, trueRoom uint32, noise float64) uda.UDA {
	weights := map[uint32]float64{trueRoom: 1}
	// Neighbouring readers may also have seen the tag.
	for d := -2; d <= 2; d++ {
		if d == 0 {
			continue
		}
		room := int(trueRoom) + d
		if room < 0 || room >= numRooms {
			continue
		}
		if r.Float64() < noise {
			weights[uint32(room)] = noise * r.Float64()
		}
	}
	var pairs []uda.Pair
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for room, w := range weights {
		pairs = append(pairs, uda.Pair{Item: room, Prob: w / sum})
	}
	return uda.MustNew(pairs...)
}

func main() {
	r := rand.New(rand.NewSource(11))

	// One relation per monitoring epoch: tuple = one nurse's inferred
	// location distribution. The inverted index suits this data — location
	// distributions are sparse (a tag is near at most a few readers).
	epoch, err := core.NewRelation(core.Options{Kind: core.InvertedIndex})
	if err != nil {
		log.Fatal(err)
	}
	const numNurses = 500
	trueRooms := make([]uint32, numNurses)
	for i := range trueRooms {
		trueRooms[i] = uint32(r.Intn(numRooms))
		if _, err := epoch.Insert(sighting(r, trueRooms[i], 0.4)); err != nil {
			log.Fatal(err)
		}
	}

	// Query 1: who was in room 5 with probability > 0.7?
	const room = 5
	matches, err := epoch.PETQ(uda.Certain(room), 0.7)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, m := range matches {
		if trueRooms[m.TID] == room {
			correct++
		}
	}
	fmt.Printf("nurses in room %d with Pr > 0.7: %d (of whom %d truly there)\n",
		room, len(matches), correct)

	// Query 2: the 3 nurses most likely to be in room 5, however uncertain.
	top, err := epoch.TopK(uda.Certain(room), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 candidates for room", room)
	for _, m := range top {
		fmt.Printf("  nurse %-4d Pr = %.3f (truly in room %d)\n", m.TID, m.Prob, trueRooms[m.TID])
	}

	// Query 3: rooms along a corridor are an *ordered* domain, so the
	// paper's relaxed window equality applies: who was probably within two
	// rooms of room 5? This catches nurses whose reader evidence straddles
	// neighbouring rooms.
	nearby, err := epoch.WindowPETQ(uda.Certain(room), 2, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	nearTrue := 0
	for _, m := range nearby {
		d := int(trueRooms[m.TID]) - room
		if d < 0 {
			d = -d
		}
		if d <= 2 {
			nearTrue++
		}
	}
	fmt.Printf("\nnurses within 2 rooms of room %d with Pr > 0.9: %d (%d truly nearby)\n",
		room, len(nearby), nearTrue)

	// Query 4: co-location analysis across two epochs — which (nurse,
	// nurse) pairs were probably in the same room? This is the paper's
	// PETJ: R ⋈_{location, τ} S.
	later, err := core.NewRelation(core.Options{Kind: core.PDRTree})
	if err != nil {
		log.Fatal(err)
	}
	for i := range trueRooms {
		// Most nurses moved; some stayed.
		newRoom := uint32(r.Intn(numRooms))
		if r.Float64() < 0.3 {
			newRoom = trueRooms[i]
		}
		if _, err := later.Insert(sighting(r, newRoom, 0.4)); err != nil {
			log.Fatal(err)
		}
	}
	pairs, err := core.PETJ(epoch, later, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	stayed := 0
	for _, p := range pairs {
		if p.Left == p.Right {
			stayed++
		}
	}
	fmt.Printf("\nPETJ with τ = 0.8: %d probable co-locations across epochs\n", len(pairs))
	fmt.Printf("  %d of them are the same nurse (probably did not move)\n", stayed)
	for i, p := range pairs {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  nurse %d (epoch 1) ~ nurse %d (epoch 2): Pr same room = %.3f\n",
			p.Left, p.Right, p.Prob)
	}
}

// Deep-web data integration: the paper's §1 example of extracting
// relational data from dynamic HTML. An extractor sees several numeric
// values on a product page and cannot tell with certainty which one is the
// price — it emits candidates with likelihoods, yielding an uncertain
// price-band attribute per listing.
//
// Two extraction runs over two retailer sites are integrated by a
// probabilistic equality join: listings from the two sites that probably
// sit in the same price band are match candidates for the same product,
// and a top-k join surfaces the most confident matches for human review.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ucat/internal/core"
	"ucat/internal/uda"
)

// Price bands form the categorical domain (e.g. band 17 = $170–$179).
const numBands = 100

// extract simulates the extractor's output for a listing whose true price
// band is known: the true band usually gets the highest likelihood, but
// other numbers on the page (shipping cost, list price, review count)
// compete with it.
func extract(r *rand.Rand, trueBand uint32) uda.UDA {
	conf := 0.5 + 0.4*r.Float64()
	pairs := []uda.Pair{{Item: trueBand, Prob: conf}}
	distractors := 1 + r.Intn(3)
	rest := 1 - conf
	for i := 0; i < distractors; i++ {
		share := rest
		if i < distractors-1 {
			share = rest * r.Float64()
		}
		band := uint32(r.Intn(numBands))
		if band == trueBand {
			band = (band + 1) % numBands
		}
		pairs = append(pairs, uda.Pair{Item: band, Prob: share})
		rest -= share
	}
	u, err := uda.New(pairs...)
	if err != nil {
		// Collisions between distractor bands merge mass; never invalid.
		panic(err)
	}
	return u
}

func main() {
	r := rand.New(rand.NewSource(23))

	// 300 products listed on both sites, plus site-exclusive listings.
	const common, exclusive = 300, 200
	trueBands := make([]uint32, common)
	for i := range trueBands {
		trueBands[i] = uint32(r.Intn(numBands))
	}

	build := func(kind core.Kind) *core.Relation {
		rel, err := core.NewRelation(core.Options{Kind: kind})
		if err != nil {
			log.Fatal(err)
		}
		for _, band := range trueBands {
			if _, err := rel.Insert(extract(r, band)); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < exclusive; i++ {
			if _, err := rel.Insert(extract(r, uint32(r.Intn(numBands)))); err != nil {
				log.Fatal(err)
			}
		}
		return rel
	}
	siteA := build(core.InvertedIndex)
	siteB := build(core.PDRTree)

	// Threshold join: listing pairs probably in the same price band.
	pairs, err := core.PETJ(siteA, siteB, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	truePositives := 0
	for _, p := range pairs {
		if p.Left < common && p.Right < common && trueBands[p.Left] == trueBands[p.Right] {
			truePositives++
		}
	}
	fmt.Printf("PETJ τ=0.5: %d candidate matches, %d share a true price band\n",
		len(pairs), truePositives)

	// Top-k join: the 10 most confident cross-site matches for review.
	best, err := core.PEJTopK(siteA, siteB, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n10 most confident matches:")
	for _, p := range best {
		mark := " "
		if p.Left < common && p.Right < common && trueBands[p.Left] == trueBands[p.Right] {
			mark = "✓"
		}
		fmt.Printf("  %s A#%-4d ~ B#%-4d Pr = %.3f\n", mark, p.Left, p.Right, p.Prob)
	}

	// A single listing can also be matched on demand.
	probe, err := siteA.Get(0)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := siteB.TopK(probe, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbest B-side matches for A#0:")
	for _, m := range ms {
		fmt.Printf("  B#%-4d Pr = %.3f\n", m.TID, m.Prob)
	}
}

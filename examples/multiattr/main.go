// Multi-attribute uncertainty: the paper's stated future work ("the
// extension of these indexing techniques for multiple uncertain
// attributes", §6). A service-ticket relation carries two uncertain
// attributes — the problem category (from a text classifier) and the
// affected product line (from an entity extractor) — each backed by its own
// index, queried conjunctively under independence.
//
// The example also shows persistence: the built relation round-trips
// through a snapshot file and answers identically afterwards.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"ucat/internal/core"
	"ucat/internal/uda"
)

const (
	numCategories = 30 // problem categories
	numProducts   = 12 // product lines
)

// classify simulates the classifier's output: a dominant class plus a tail.
func classify(r *rand.Rand, domain int) uda.UDA {
	dominant := uint32(r.Intn(domain))
	conf := 0.55 + 0.4*r.Float64()
	pairs := []uda.Pair{{Item: dominant, Prob: conf}}
	if other := uint32(r.Intn(domain)); other != dominant {
		pairs = append(pairs, uda.Pair{Item: other, Prob: 1 - conf})
	}
	return uda.MustNew(pairs...)
}

func main() {
	// Problem categories on an inverted index (sparse, classifier-style);
	// product lines on a PDR-tree.
	tickets, err := core.NewMultiRelation(
		core.Options{Kind: core.InvertedIndex},
		core.Options{Kind: core.PDRTree},
	)
	if err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewSource(31))
	const numTickets = 5000
	for i := 0; i < numTickets; i++ {
		if _, err := tickets.Insert(classify(r, numCategories), classify(r, numProducts)); err != nil {
			log.Fatal(err)
		}
	}

	// "Tickets that are probably about category 4 AND product line 2."
	q := []uda.UDA{uda.Certain(4), uda.Certain(2)}
	matches, err := tickets.ConjunctivePETQ(q, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tickets with Pr(category=4 ∧ product=2) > 0.5: %d\n", len(matches))
	for i, m := range matches {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		vals, err := tickets.Get(m.TID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ticket %-5d Pr = %.3f  category=%v product=%v\n", m.TID, m.Prob, vals[0], vals[1])
	}

	// The 5 tickets most probably matching a fuzzy conjunctive query.
	fuzzy := []uda.UDA{
		uda.MustNew(uda.Pair{Item: 4, Prob: 0.7}, uda.Pair{Item: 9, Prob: 0.3}),
		uda.MustNew(uda.Pair{Item: 2, Prob: 0.6}, uda.Pair{Item: 5, Prob: 0.4}),
	}
	top, err := tickets.ConjunctiveTopK(fuzzy, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 for the fuzzy conjunctive query:")
	for _, m := range top {
		fmt.Printf("  ticket %-5d Pr = %.4f\n", m.TID, m.Prob)
	}

	// Persistence: snapshot one attribute's relation and reload it.
	dir, err := os.MkdirTemp("", "ucat-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "categories.ucat")
	if err := tickets.Attr(0).SaveFile(path); err != nil {
		log.Fatal(err)
	}
	reloaded, err := core.LoadRelationFile(path)
	if err != nil {
		log.Fatal(err)
	}
	before, err := tickets.Attr(0).PETQ(uda.Certain(4), 0.6)
	if err != nil {
		log.Fatal(err)
	}
	after, err := reloaded.PETQ(uda.Certain(4), 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npersistence: category index answers %d matches before and %d after reload\n",
		len(before), len(after))
}

// CRM triage: the paper's motivating customer-relationship-management
// scenario at realistic scale. A cell-phone carrier's complaint texts are
// auto-classified into 50 problem categories; each complaint's category is
// therefore *uncertain* — a distribution over categories. The support desk
// needs to:
//
//  1. pull every complaint that is highly likely to be about a given
//     category (PETQ),
//  2. find the complaints most similar to a newly escalated case (top-k),
//  3. cluster-hunt: find complaints whose whole category distribution
//     resembles the escalated case (DSTQ), catching multi-issue tickets
//     equality search would miss.
//
// The run also contrasts index I/O with a full scan, reproducing in
// miniature what the paper's Figure 6 measures.
package main

import (
	"fmt"
	"log"

	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/uda"
)

func main() {
	const numComplaints = 20000
	data := dataset.CRM1Like(7, numComplaints)

	build := func(kind core.Kind) *core.Relation {
		rel, err := core.NewRelation(core.Options{Kind: kind, PoolFrames: 4096})
		if err != nil {
			log.Fatal(err)
		}
		for _, u := range data.Tuples {
			if _, err := rel.Insert(u); err != nil {
				log.Fatal(err)
			}
		}
		// Query under the paper's 100-frame-per-query buffer discipline.
		if err := rel.Pool().Resize(100); err != nil {
			log.Fatal(err)
		}
		return rel
	}
	indexed := build(core.PDRTree)
	scanned := build(core.ScanOnly)

	// 1. All complaints that are probably about category 3 ("billing").
	const billing = 3
	query := uda.Certain(billing)
	indexed.Pool().ResetStats()
	hot, err := indexed.PETQ(query, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	indexedIO := indexed.Pool().Stats().IOs()

	scanned.Pool().ResetStats()
	hotScan, err := scanned.PETQ(query, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	scanIO := scanned.Pool().Stats().IOs()

	fmt.Printf("complaints with Pr(category = billing) > 0.6: %d\n", len(hot))
	fmt.Printf("  PDR-tree: %d I/Os   full scan: %d I/Os (%.1fx)\n",
		indexedIO, scanIO, float64(scanIO)/float64(indexedIO))
	if len(hot) != len(hotScan) {
		log.Fatalf("index and scan disagree: %d vs %d", len(hot), len(hotScan))
	}

	// 2. An escalated case arrives: the classifier is torn between two
	// categories. Which existing tickets most probably describe the same
	// problem?
	escalated := uda.MustNew(uda.Pair{Item: billing, Prob: 0.55}, uda.Pair{Item: 7, Prob: 0.45})
	top, err := indexed.TopK(escalated, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5 tickets most probably equal to the escalated case:")
	for _, m := range top {
		u, err := indexed.Get(m.TID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ticket %-6d Pr = %.3f  categories %v\n", m.TID, m.Prob, u)
	}

	// 3. Distribution hunt: tickets whose *uncertainty profile* matches the
	// escalated case (similar split between the same categories), found by
	// KL-based nearest neighbors.
	similar, err := indexed.DSTopK(escalated, 5, uda.KL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5 tickets with the most similar category distribution (KL):")
	for _, n := range similar {
		u, err := indexed.Get(n.TID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ticket %-6d KL = %.4f  categories %v\n", n.TID, n.Dist, u)
	}
}

// Command ucatload drives load at a running ucatd and writes a
// figures-grade benchmark document, BENCH_serve.json, recording throughput,
// client-observed latency quantiles and rejection rate at each offered-load
// level. Each -proto (json, binary, or both) runs its own pair of sweeps:
//
//   - closed loop (-clients): N clients issue queries back-to-back, the
//     classic throughput/latency trade-off as concurrency grows;
//   - open loop (-rates): queries arrive on a fixed schedule regardless of
//     how the server keeps up, which is what exposes admission control —
//     past saturation the rejection rate climbs instead of the queue.
//
// The workload mixes the kinds named by -kinds; -hotset replays queries from
// a small pre-drawn pool so a batching server actually coalesces them, and
// -merge appends this run's sweeps to an existing document so a script can
// benchmark several server configurations (batching on/off) into one file.
//
// With -load it also replays a deterministic workload over the batchable
// kinds (PETQ, top-k, window) three ways — directly against the same
// snapshot in-process, through the JSON protocol, and through the binary
// protocol, the served pair issued concurrently so a batching server
// coalesces them — and fails if a single answer differs anywhere: the
// serving layer, either encoding of it, batched or not, must never change a
// result.
//
//	$ ucatload -addr localhost:8080 -proto json,binary -clients 1,4,16 \
//	      -dur 5s -load rel.ucat -out BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/uda"
	"ucat/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ucatload: %v\n", err)
		os.Exit(1)
	}
}

// params collects the parsed command line.
type params struct {
	addr     string
	protos   []string
	kinds    []string
	clients  []int
	rates    []int
	dur      time.Duration
	domain   int
	items    int
	tau      float64
	k        int
	c        uint
	hotset   int
	seed     int64
	load     string
	check    int
	out      string
	merge    bool
	batching bool
	timeout  time.Duration
	slowlog  bool

	ingestClients int
	ingestBatch   int
	ingestLabel   string
}

// slowlogTop bounds the slow-query records embedded per sweep point.
const slowlogTop = 5

// genKinds is the closed set -kinds accepts, matching the server's API.
var genKinds = map[string]bool{
	"petq": true, "topk": true, "window": true,
	"windowtopk": true, "dstq": true, "neighbor": true,
}

func run() error {
	var p params
	var protos, kinds, clients, rates string
	flag.StringVar(&p.addr, "addr", "localhost:8080", "ucatd address (host:port)")
	flag.StringVar(&protos, "proto", "json", "protocols to sweep, comma separated: json | binary")
	flag.StringVar(&kinds, "kinds", "petq", "workload query-kind mix, comma separated (petq,topk,window,windowtopk,dstq,neighbor)")
	flag.StringVar(&clients, "clients", "1,4,16", "closed-loop client counts, comma separated (empty = skip)")
	flag.StringVar(&rates, "rates", "", "open-loop offered rates in queries/sec, comma separated (empty = skip)")
	flag.DurationVar(&p.dur, "dur", 5*time.Second, "measurement duration per load level")
	flag.IntVar(&p.domain, "domain", 50, "item domain the generated queries draw from (match the dataset)")
	flag.IntVar(&p.items, "items", 3, "non-zero items per generated query distribution")
	flag.Float64Var(&p.tau, "tau", 0.1, "threshold for generated petq/window queries (and dstq distance)")
	flag.IntVar(&p.k, "k", 10, "k for generated topk/windowtopk/neighbor queries")
	flag.UintVar(&p.c, "c", 2, "window radius for generated window/windowtopk queries")
	flag.IntVar(&p.hotset, "hotset", 0,
		"replay queries from a pool of this many pre-drawn cases instead of drawing fresh ones (duplicates let the server's batcher coalesce; 0 = all fresh)")
	flag.Int64Var(&p.seed, "seed", 1, "workload PRNG seed")
	flag.StringVar(&p.load, "load", "", "relation snapshot for the determinism check (empty = skip)")
	flag.IntVar(&p.check, "check", 50, "determinism-check query count per kind (with -load)")
	flag.StringVar(&p.out, "out", "BENCH_serve.json", "output document path (empty = stdout only)")
	flag.BoolVar(&p.merge, "merge", false, "append this run's sweeps to an existing -out document instead of replacing it")
	flag.BoolVar(&p.batching, "batching", false, "label recorded on this run's sweeps: the server was started with micro-batching enabled")
	flag.DurationVar(&p.timeout, "timeout", 10*time.Second, "client-side HTTP timeout")
	flag.BoolVar(&p.slowlog, "slowlog", false,
		"embed the server's top slow-query flight records per sweep point (needs ucatd's /debug/requests)")
	flag.IntVar(&p.ingestClients, "ingestclients", 0,
		"concurrent ingest writers streaming inserts at /v1/ingest for the whole run, query sweeps and determinism check included (0 = none; needs ucatd -wal)")
	flag.IntVar(&p.ingestBatch, "ingestbatch", 8, "operations per ingest request")
	flag.StringVar(&p.ingestLabel, "ingestlabel", "",
		"server-configuration label recorded on this run's ingest sweep (e.g. groupcommit=2ms)")
	flag.Parse()

	var err error
	if p.clients, err = parseInts(clients); err != nil {
		return fmt.Errorf("-clients: %w", err)
	}
	if p.rates, err = parseInts(rates); err != nil {
		return fmt.Errorf("-rates: %w", err)
	}
	p.protos = splitList(protos)
	for _, pr := range p.protos {
		if pr != "json" && pr != "binary" {
			return fmt.Errorf("-proto %q: want json or binary", pr)
		}
	}
	if len(p.protos) == 0 {
		return fmt.Errorf("-proto: at least one protocol required")
	}
	p.kinds = splitList(kinds)
	for _, k := range p.kinds {
		if !genKinds[k] {
			return fmt.Errorf("-kinds %q: unknown query kind", k)
		}
	}
	if len(p.kinds) == 0 {
		return fmt.Errorf("-kinds: at least one kind required")
	}

	doc := benchDoc{
		Addr:     p.addr,
		Duration: p.dur.String(),
		Seed:     p.seed,
		When:     time.Now().UTC().Format(time.RFC3339),
	}
	if p.merge {
		if old := readDoc(p.out); old != nil {
			doc.Sweeps = old.Sweeps
			doc.Ingest = old.Ingest
			// Sections this run doesn't regenerate survive the merge: a
			// batching-off pass without -load must not erase the check the
			// batching-on pass recorded.
			doc.Determinism = old.Determinism
			doc.Pool = old.Pool
		}
	}
	client := &http.Client{
		Timeout: p.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}

	// Writers start before the first sweep and keep streaming until after the
	// determinism check: every number below is measured under sustained
	// concurrent ingest.
	var ing *ingestRun
	finishIngest := func() {
		if ing == nil {
			return
		}
		is := ing.finish(client, &p)
		doc.Ingest = append(doc.Ingest, is)
		fmt.Printf("ingest [%s] %d writers × %d-op batches: %s\n",
			is.Label, is.Clients, is.Batch, is)
		ing = nil
	}
	if p.ingestClients > 0 {
		if ing, err = startIngest(client, &p); err != nil {
			return err
		}
	}

	for _, proto := range p.protos {
		sw := sweep{Proto: proto, Batching: p.batching, Kinds: p.kinds, Hotset: p.hotset}
		wl := newWorkload(&p)
		for _, n := range p.clients {
			since := slowlogMark(client, &p)
			lvl := runClosed(client, &p, wl, proto, n)
			lvl.SlowQueries = fetchSlowSince(client, &p, since)
			sw.Closed = append(sw.Closed, lvl)
			fmt.Printf("closed [%s%s] %3d clients: %s\n", proto, batchTag(p.batching), n, lvl)
		}
		for _, r := range p.rates {
			since := slowlogMark(client, &p)
			lvl := runOpen(client, &p, wl, proto, r)
			lvl.SlowQueries = fetchSlowSince(client, &p, since)
			sw.Open = append(sw.Open, lvl)
			fmt.Printf("open [%s%s] %6d q/s:    %s\n", proto, batchTag(p.batching), r, lvl)
		}
		doc.Sweeps = append(doc.Sweeps, sw)
	}
	// Legacy mirror: the first sweep's levels stay addressable under the
	// original flat keys so pre-sweep readers of the document keep working.
	if len(doc.Sweeps) > 0 {
		doc.Closed = doc.Sweeps[0].Closed
		doc.Open = doc.Sweeps[0].Open
	}

	if pool, err := fetchPoolStats(client, &p); err != nil {
		fmt.Fprintf(os.Stderr, "ucatload: /v1/stats pool snapshot unavailable: %v\n", err)
	} else {
		doc.Pool = pool
		fmt.Printf("server pool: %s, %d frames, %d stripes, hit rate %.3f\n",
			pool.Policy, pool.Frames, pool.Stripes, pool.HitRate)
	}

	if p.load != "" {
		chk, err := runCheck(client, &p)
		if err != nil {
			return err
		}
		doc.Determinism = chk
		for _, kind := range checkKinds {
			kc := chk.PerKind[kind]
			fmt.Printf("determinism [%s]: %d queries, %d mismatches\n", kind, kc.Queries, kc.Mismatches)
		}
		finishIngest() // the check ran with the writers still streaming
		if chk.Mismatches != 0 {
			writeDoc(&doc, p.out)
			return fmt.Errorf("served answers diverged from direct execution")
		}
	}
	finishIngest()

	return writeDoc(&doc, p.out)
}

// batchTag renders the sweep label suffix for terminal lines.
func batchTag(batching bool) string {
	if batching {
		return "+batch"
	}
	return ""
}

// benchDoc is the BENCH_serve.json schema. Sweeps is the primary record —
// one entry per (protocol, batching) combination measured, possibly
// accumulated across runs with -merge. The flat Closed/Open fields mirror
// the first sweep for readers that predate the sweep dimension.
type benchDoc struct {
	Addr        string        `json:"addr"`
	Duration    string        `json:"duration_per_level"`
	Seed        int64         `json:"seed"`
	When        string        `json:"when"`
	Sweeps      []sweep       `json:"sweeps,omitempty"`
	Ingest      []ingestSweep `json:"ingest,omitempty"`
	Closed      []level       `json:"closed_loop,omitempty"`
	Open        []level       `json:"open_loop,omitempty"`
	Determinism *checkDoc     `json:"determinism,omitempty"`
	Pool        *poolDoc      `json:"server_pool,omitempty"`
}

// sweep is one protocol's pair of load sweeps under one server
// configuration.
type sweep struct {
	Proto    string   `json:"proto"`
	Batching bool     `json:"batching"`
	Kinds    []string `json:"kinds,omitempty"`
	Hotset   int      `json:"hotset,omitempty"`
	Closed   []level  `json:"closed_loop,omitempty"`
	Open     []level  `json:"open_loop,omitempty"`
}

// poolDoc mirrors the shared-pool section of ucatd's /v1/stats, captured
// after the sweeps so the document records the pool configuration and
// lifetime hit rate behind the latency numbers.
type poolDoc struct {
	Policy    string  `json:"policy"`
	Frames    int     `json:"frames"`
	Stripes   int     `json:"stripes"`
	Occupancy int     `json:"occupancy"`
	Reads     uint64  `json:"reads"`
	Hits      uint64  `json:"hits"`
	HitRate   float64 `json:"hit_rate"`
	Evictions uint64  `json:"evictions"`
}

// level is one offered-load measurement.
type level struct {
	Clients       int     `json:"clients,omitempty"`
	OfferedQPS    int     `json:"offered_qps,omitempty"`
	Sent          uint64  `json:"sent"`
	Completed     uint64  `json:"completed"`
	Rejected      uint64  `json:"rejected"`
	Timeouts      uint64  `json:"timeouts"`
	Errors        uint64  `json:"errors"`
	ThroughputQPS float64 `json:"throughput_qps"`
	RejectionRate float64 `json:"rejection_rate"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`

	// SlowQueries (-slowlog) is the server's view of this level's worst
	// requests: the slowest flight records newly retained during the sweep
	// point, span trees included — the document explains its own tail.
	SlowQueries []obs.RequestRecord `json:"slow_queries,omitempty"`
}

// String renders a level as a one-line summary for the terminal.
func (l level) String() string {
	return fmt.Sprintf("%8.1f q/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  rejected %5.1f%%",
		l.ThroughputQPS, l.P50MS, l.P95MS, l.P99MS, 100*l.RejectionRate)
}

// checkDoc records the three-way determinism comparison (direct vs JSON vs
// binary) per batchable kind. Queries and Mismatches total across kinds so
// existing readers of the flat fields keep their contract.
type checkDoc struct {
	Queries    int                  `json:"queries"`
	Mismatches int                  `json:"mismatches"`
	PerKind    map[string]kindCheck `json:"per_kind"`
}

// kindCheck is one kind's slice of the determinism comparison.
type kindCheck struct {
	Queries    int `json:"queries"`
	Mismatches int `json:"mismatches"`
}

// counters accumulates per-level outcomes across client goroutines.
type counters struct {
	sent, completed, rejected, timeouts, errors atomic.Uint64

	mu   sync.Mutex
	lats []float64 // milliseconds, completed queries only
}

func (c *counters) observe(ms float64) {
	c.mu.Lock()
	c.lats = append(c.lats, ms)
	c.mu.Unlock()
}

// finish folds the counters into a level document.
func (c *counters) finish(elapsed time.Duration) level {
	sort.Float64s(c.lats)
	q := func(p float64) float64 {
		if len(c.lats) == 0 {
			return 0
		}
		i := int(p * float64(len(c.lats)))
		if i >= len(c.lats) {
			i = len(c.lats) - 1
		}
		return c.lats[i]
	}
	sent := c.sent.Load()
	lvl := level{
		Sent:          sent,
		Completed:     c.completed.Load(),
		Rejected:      c.rejected.Load(),
		Timeouts:      c.timeouts.Load(),
		Errors:        c.errors.Load(),
		ThroughputQPS: float64(c.completed.Load()) / elapsed.Seconds(),
		P50MS:         q(0.50),
		P95MS:         q(0.95),
		P99MS:         q(0.99),
	}
	if sent > 0 {
		lvl.RejectionRate = float64(lvl.Rejected) / float64(sent)
	}
	return lvl
}

// queryCase is one generated query: a kind plus the parameters that kind
// needs, ready to encode under either protocol.
type queryCase struct {
	kind string
	q    uda.UDA
	tau  float64
	k    int
	c    uint32
}

// workload is the query source one sweep draws from. With -hotset the pool
// is pre-drawn and every request replays one of its cases — the repeats are
// what give a batching server identical distributions to coalesce; with
// hotset 0 every draw is fresh.
type workload struct {
	p    *params
	pool []queryCase
}

func newWorkload(p *params) *workload {
	w := &workload{p: p}
	if p.hotset > 0 {
		rng := rand.New(rand.NewSource(p.seed))
		for i := 0; i < p.hotset; i++ {
			w.pool = append(w.pool, genCase(p, rng))
		}
	}
	return w
}

// draw picks the next case for one client goroutine.
func (w *workload) draw(rng *rand.Rand) queryCase {
	if len(w.pool) > 0 {
		return w.pool[rng.Intn(len(w.pool))]
	}
	return genCase(w.p, rng)
}

// genCase draws one random query of a random kind from the -kinds mix.
func genCase(p *params, rng *rand.Rand) queryCase {
	return queryCase{
		kind: p.kinds[rng.Intn(len(p.kinds))],
		q:    genQuery(p, rng),
		tau:  p.tau,
		k:    p.k,
		c:    uint32(p.c),
	}
}

// runClosed measures one closed-loop level: n clients in lockstep with the
// server, each issuing its next query as soon as the previous one answers.
func runClosed(client *http.Client, p *params, wl *workload, proto string, n int) level {
	var c counters
	deadline := time.Now().Add(p.dur)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.seed + int64(id)))
			for time.Now().Before(deadline) {
				post(client, p, proto, encodeCase(wl.draw(rng), proto, 0), &c)
			}
		}(i)
	}
	start := time.Now()
	wg.Wait()
	return levelWithClients(c.finish(time.Since(start)), n, 0)
}

// runOpen measures one open-loop level: queries depart on a fixed schedule
// whether or not earlier ones have answered, so a saturated server shows up
// as rejections rather than coordinated slowdown.
func runOpen(client *http.Client, p *params, wl *workload, proto string, qps int) level {
	var c counters
	interval := time.Second / time.Duration(qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	rng := rand.New(rand.NewSource(p.seed))
	var wg sync.WaitGroup
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for time.Since(start) < p.dur {
		<-tick.C
		body := encodeCase(wl.draw(rng), proto, 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(client, p, proto, body, &c)
		}()
	}
	wg.Wait()
	return levelWithClients(c.finish(time.Since(start)), 0, qps)
}

// levelWithClients stamps the load descriptor onto a finished level.
func levelWithClients(lvl level, clients, qps int) level {
	lvl.Clients = clients
	lvl.OfferedQPS = qps
	return lvl
}

// genQuery draws one random query distribution over the configured domain.
func genQuery(p *params, rng *rand.Rand) uda.UDA {
	items := make(map[uint32]float64, p.items)
	for len(items) < p.items {
		items[uint32(rng.Intn(p.domain))] = 0
	}
	rest := 1.0
	pairs := make([]uda.Pair, 0, len(items))
	for it := range items {
		pr := rest * (0.3 + 0.5*rng.Float64())
		rest -= pr
		pairs = append(pairs, uda.Pair{Item: it, Prob: pr})
	}
	u, err := uda.New(pairs...)
	if err != nil {
		panic(err) // generated mass is always in (0,1]
	}
	return u
}

// queryString renders a distribution in the item:prob JSON notation.
func queryString(q uda.UDA) string {
	var b strings.Builder
	for i, pr := range q.Pairs() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%g", pr.Item, pr.Prob)
	}
	return b.String()
}

// encodeCase renders one query case as a request body for the protocol.
// limit 0 leaves the server default in place.
func encodeCase(qc queryCase, proto string, limit int) []byte {
	if proto == "binary" {
		return encodeBinary(qc, limit)
	}
	return encodeJSON(qc, limit)
}

// encodeJSON renders the case as a JSON request body, setting only the
// fields its kind consumes (mirroring the API reference in OPERATIONS.md).
func encodeJSON(qc queryCase, limit int) []byte {
	req := map[string]any{"kind": qc.kind, "query": queryString(qc.q)}
	switch qc.kind {
	case "petq":
		req["tau"] = qc.tau
	case "topk":
		req["k"] = qc.k
	case "window":
		req["c"] = qc.c
		req["tau"] = qc.tau
	case "windowtopk":
		req["c"] = qc.c
		req["k"] = qc.k
	case "dstq":
		req["td"] = qc.tau
		req["div"] = "L1"
	case "neighbor":
		req["k"] = qc.k
		req["div"] = "L1"
	}
	if limit > 0 {
		req["limit"] = limit
	}
	b, _ := json.Marshal(req)
	return b
}

// encodeBinary renders the case as a ucatwire query frame.
func encodeBinary(qc queryCase, limit int) []byte {
	kind, ok := wire.KindOf(qc.kind)
	if !ok {
		panic("unknown kind " + qc.kind) // genKinds already validated it
	}
	wr := wire.Request{Kind: kind, Pairs: qc.q.Pairs(), Limit: limit}
	switch qc.kind {
	case "petq":
		wr.Tau = qc.tau
	case "topk":
		wr.K = qc.k
	case "window":
		wr.C = qc.c
		wr.Tau = qc.tau
	case "windowtopk":
		wr.C = qc.c
		wr.K = qc.k
	case "dstq":
		wr.TD = qc.tau
		wr.Div = uda.L1
	case "neighbor":
		wr.K = qc.k
		wr.Div = uda.L1
	}
	return wire.AppendRequest(nil, &wr)
}

// post sends one pre-encoded request body and classifies the response. The
// JSON protocol carries its outcome in the HTTP status; the binary protocol
// always answers 200 and carries the status in-band, so the frame is decoded
// far enough to classify it.
func post(client *http.Client, p *params, proto string, body []byte, c *counters) {
	c.sent.Add(1)
	start := time.Now()
	ct := "application/json"
	if proto == "binary" {
		ct = wire.ContentType
	}
	resp, err := client.Post("http://"+p.addr+"/v1/query", ct, bytes.NewReader(body))
	if err != nil {
		c.errors.Add(1)
		return
	}
	status := resp.StatusCode
	if proto == "binary" && status == http.StatusOK {
		frame, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			_ = resp.Body.Close()
			c.errors.Add(1)
			return
		}
		if status, err = wireStatus(frame); err != nil {
			_ = resp.Body.Close()
			c.errors.Add(1)
			return
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	_ = resp.Body.Close()
	switch status {
	case http.StatusOK:
		c.completed.Add(1)
		c.observe(float64(time.Since(start).Microseconds()) / 1000)
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		c.rejected.Add(1)
	case http.StatusRequestTimeout:
		c.timeouts.Add(1)
	default:
		c.errors.Add(1)
	}
}

// wireStatus decodes a binary response frame far enough to classify its
// outcome, mapping the in-band OK encoding (0) to HTTP 200.
func wireStatus(frame []byte) (int, error) {
	ftype, body, err := wire.DecodeFrame(frame)
	if err != nil {
		return 0, err
	}
	if ftype != wire.FrameResponse {
		return 0, fmt.Errorf("frame type %#x, want response", ftype)
	}
	var rsp wire.Response
	if err := wire.DecodeResponse(body, &rsp); err != nil {
		return 0, err
	}
	if rsp.Status == 0 {
		return http.StatusOK, nil
	}
	return rsp.Status, nil
}

// fetchPoolStats grabs the shared-pool section from ucatd's /v1/stats.
func fetchPoolStats(client *http.Client, p *params) (*poolDoc, error) {
	resp, err := client.Get("http://" + p.addr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var payload struct {
		Pool poolDoc `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	return &payload.Pool, nil
}

// slowlogMark records where the server's trace-ID sequence stands before a
// sweep point, so fetchSlowSince can keep only records the level itself
// produced. Returns 0 (keep everything) when -slowlog is off or the endpoint
// is unavailable.
func slowlogMark(client *http.Client, p *params) uint64 {
	if !p.slowlog {
		return 0
	}
	resp, err := client.Get("http://" + p.addr + "/debug/requests?limit=1")
	if err != nil {
		return 0
	}
	defer func() { _ = resp.Body.Close() }()
	var recs []obs.RequestRecord
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&recs) != nil || len(recs) == 0 {
		return 0
	}
	return recs[0].ID
}

// fetchSlowSince pulls the slow-request rings from /debug/requests and keeps
// the slowlogTop slowest records this sweep point added (trace IDs beyond
// since). A server without the endpoint degrades to an absent field, never a
// failed benchmark.
func fetchSlowSince(client *http.Client, p *params, since uint64) []obs.RequestRecord {
	if !p.slowlog {
		return nil
	}
	resp, err := client.Get("http://" + p.addr + "/debug/requests?outcome=slow&limit=1000")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucatload: -slowlog: %v\n", err)
		return nil
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "ucatload: -slowlog: /debug/requests status %d\n", resp.StatusCode)
		return nil
	}
	var recs []obs.RequestRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		fmt.Fprintf(os.Stderr, "ucatload: -slowlog: decoding /debug/requests: %v\n", err)
		return nil
	}
	fresh := recs[:0]
	for _, r := range recs {
		if r.ID > since {
			fresh = append(fresh, r)
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].LatencyNS > fresh[j].LatencyNS })
	if len(fresh) > slowlogTop {
		fresh = fresh[:slowlogTop]
	}
	return fresh
}

// checkKinds is the determinism check's coverage: the batchable kinds, whose
// answers must survive protocol encoding AND batch carving unchanged.
var checkKinds = []string{"petq", "topk", "window"}

// runCheck replays a deterministic workload per batchable kind three ways —
// direct, JSON-served, binary-served — comparing every answer bit for bit.
// The two served requests go out concurrently with identical distributions,
// so on a batching server they coalesce into one traversal and the check
// also proves batch carving exact.
func runCheck(client *http.Client, p *params) (*checkDoc, error) {
	rel, err := core.LoadRelationFile(p.load)
	if err != nil {
		return nil, fmt.Errorf("determinism check: %w", err)
	}
	chk := &checkDoc{PerKind: make(map[string]kindCheck, len(checkKinds))}
	for ki, kind := range checkKinds {
		rng := rand.New(rand.NewSource(p.seed + 7919*int64(ki+1)))
		kc := kindCheck{Queries: p.check}
		for i := 0; i < p.check; i++ {
			qc := queryCase{kind: kind, q: genQuery(p, rng), tau: p.tau, k: p.k, c: uint32(p.c)}
			want, err := direct(rel, qc)
			if err != nil {
				return nil, fmt.Errorf("direct %s: %w", kind, err)
			}
			limit := len(want) + 1

			var jm, bm []wire.Match
			var jerr, berr error
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				jm, jerr = servedJSON(client, p, qc, limit)
			}()
			go func() {
				defer wg.Done()
				bm, berr = servedBinary(client, p, qc, limit)
			}()
			wg.Wait()
			if jerr != nil {
				return nil, fmt.Errorf("served %s (json): %w", kind, jerr)
			}
			if berr != nil {
				return nil, fmt.Errorf("served %s (binary): %w", kind, berr)
			}
			if !sameAnswers(jm, want) || !sameAnswers(bm, want) || !sameMatches(jm, bm) {
				kc.Mismatches++
			}
		}
		chk.PerKind[kind] = kc
		chk.Queries += kc.Queries
		chk.Mismatches += kc.Mismatches
	}
	return chk, nil
}

// direct runs one check case against the in-process relation.
func direct(rel *core.Relation, qc queryCase) ([]core.Match, error) {
	switch qc.kind {
	case "topk":
		return rel.TopK(qc.q, qc.k)
	case "window":
		return rel.WindowPETQ(qc.q, qc.c, qc.tau)
	default:
		return rel.PETQ(qc.q, qc.tau)
	}
}

// servedJSON posts one check case over the JSON protocol and decodes its
// matches.
func servedJSON(client *http.Client, p *params, qc queryCase, limit int) ([]wire.Match, error) {
	resp, err := client.Post("http://"+p.addr+"/v1/query", "application/json",
		bytes.NewReader(encodeJSON(qc, limit)))
	if err != nil {
		return nil, err
	}
	var qr struct {
		Count   int          `json:"count"`
		Matches []wire.Match `json:"matches"`
	}
	err = json.NewDecoder(resp.Body).Decode(&qr)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d, decode err %v", resp.StatusCode, err)
	}
	if qr.Count != len(qr.Matches) {
		return nil, fmt.Errorf("count %d but %d matches", qr.Count, len(qr.Matches))
	}
	return qr.Matches, nil
}

// servedBinary posts one check case over the binary protocol and decodes its
// matches from the response frame.
func servedBinary(client *http.Client, p *params, qc queryCase, limit int) ([]wire.Match, error) {
	resp, err := client.Post("http://"+p.addr+"/v1/query", wire.ContentType,
		bytes.NewReader(encodeBinary(qc, limit)))
	if err != nil {
		return nil, err
	}
	frame, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d, read err %v", resp.StatusCode, err)
	}
	ftype, body, err := wire.DecodeFrame(frame)
	if err != nil {
		return nil, err
	}
	if ftype != wire.FrameResponse {
		return nil, fmt.Errorf("frame type %#x, want response", ftype)
	}
	var rsp wire.Response
	if err := wire.DecodeResponse(body, &rsp); err != nil {
		return nil, err
	}
	if rsp.Status != 0 && rsp.Status != http.StatusOK {
		return nil, fmt.Errorf("in-band status %d: %s", rsp.Status, rsp.Err)
	}
	if rsp.Count != len(rsp.Matches) {
		return nil, fmt.Errorf("count %d but %d matches", rsp.Count, len(rsp.Matches))
	}
	return rsp.Matches, nil
}

// sameAnswers compares a served answer against direct execution bit for bit.
func sameAnswers(got []wire.Match, want []core.Match) bool {
	if len(got) != len(want) {
		return false
	}
	for j, m := range got {
		//ucatlint:ignore floatcmp the determinism check demands bit-identical served and direct answers
		if m.TID != want[j].TID || m.Prob != want[j].Prob {
			return false
		}
	}
	return true
}

// sameMatches compares the two protocols' decoded answers bit for bit: after
// canonicalization (decode) the encodings must agree exactly.
func sameMatches(a, b []wire.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for j := range a {
		//ucatlint:ignore floatcmp the cross-protocol check demands bit-identical answers
		if a[j].TID != b[j].TID || a[j].Prob != b[j].Prob {
			return false
		}
	}
	return true
}

// readDoc loads an existing benchmark document for -merge; any problem —
// missing file, stale schema — degrades to starting fresh.
func readDoc(path string) *benchDoc {
	if path == "" {
		return nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var doc benchDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "ucatload: -merge: %s unreadable, starting fresh: %v\n", path, err)
		return nil
	}
	return &doc
}

// writeDoc renders the benchmark document to path (and always to stdout as
// a final summary line).
func writeDoc(doc *benchDoc, path string) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path != "" {
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("non-positive value %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// splitList parses a comma-separated list of non-empty strings.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// Command ucatload drives load at a running ucatd and writes a
// figures-grade benchmark document, BENCH_serve.json, recording throughput,
// client-observed latency quantiles and rejection rate at each offered-load
// level. It runs two sweeps:
//
//   - closed loop (-clients): N clients issue queries back-to-back, the
//     classic throughput/latency trade-off as concurrency grows;
//   - open loop (-rates): queries arrive on a fixed schedule regardless of
//     how the server keeps up, which is what exposes admission control —
//     past saturation the rejection rate climbs instead of the queue.
//
// With -load it also replays a deterministic PETQ workload both through the
// server and directly against the same snapshot in-process, and fails if a
// single answer differs — the serving layer must never change a result.
//
//	$ ucatload -addr localhost:8080 -clients 1,4,16 -rates 200,800,3200 \
//	      -dur 5s -load rel.ucat -out BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/uda"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ucatload: %v\n", err)
		os.Exit(1)
	}
}

// params collects the parsed command line.
type params struct {
	addr    string
	clients []int
	rates   []int
	dur     time.Duration
	domain  int
	items   int
	tau     float64
	seed    int64
	load    string
	check   int
	out     string
	timeout time.Duration
	slowlog bool
}

// slowlogTop bounds the slow-query records embedded per sweep point.
const slowlogTop = 5

func run() error {
	var p params
	var clients, rates string
	flag.StringVar(&p.addr, "addr", "localhost:8080", "ucatd address (host:port)")
	flag.StringVar(&clients, "clients", "1,4,16", "closed-loop client counts, comma separated (empty = skip)")
	flag.StringVar(&rates, "rates", "", "open-loop offered rates in queries/sec, comma separated (empty = skip)")
	flag.DurationVar(&p.dur, "dur", 5*time.Second, "measurement duration per load level")
	flag.IntVar(&p.domain, "domain", 50, "item domain the generated queries draw from (match the dataset)")
	flag.IntVar(&p.items, "items", 3, "non-zero items per generated query distribution")
	flag.Float64Var(&p.tau, "tau", 0.1, "PETQ threshold for generated queries")
	flag.Int64Var(&p.seed, "seed", 1, "workload PRNG seed")
	flag.StringVar(&p.load, "load", "", "relation snapshot for the determinism check (empty = skip)")
	flag.IntVar(&p.check, "check", 50, "determinism-check query count (with -load)")
	flag.StringVar(&p.out, "out", "BENCH_serve.json", "output document path (empty = stdout only)")
	flag.DurationVar(&p.timeout, "timeout", 10*time.Second, "client-side HTTP timeout")
	flag.BoolVar(&p.slowlog, "slowlog", false,
		"embed the server's top slow-query flight records per sweep point (needs ucatd's /debug/requests)")
	flag.Parse()

	var err error
	if p.clients, err = parseInts(clients); err != nil {
		return fmt.Errorf("-clients: %w", err)
	}
	if p.rates, err = parseInts(rates); err != nil {
		return fmt.Errorf("-rates: %w", err)
	}

	doc := benchDoc{
		Addr:     p.addr,
		Duration: p.dur.String(),
		Seed:     p.seed,
		When:     time.Now().UTC().Format(time.RFC3339),
	}
	client := &http.Client{
		Timeout: p.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}

	for _, n := range p.clients {
		since := slowlogMark(client, &p)
		lvl := runClosed(client, &p, n)
		lvl.SlowQueries = fetchSlowSince(client, &p, since)
		doc.Closed = append(doc.Closed, lvl)
		fmt.Printf("closed %3d clients: %s\n", n, lvl)
	}
	for _, r := range p.rates {
		since := slowlogMark(client, &p)
		lvl := runOpen(client, &p, r)
		lvl.SlowQueries = fetchSlowSince(client, &p, since)
		doc.Open = append(doc.Open, lvl)
		fmt.Printf("open %6d q/s:    %s\n", r, lvl)
	}

	if pool, err := fetchPoolStats(client, &p); err != nil {
		fmt.Fprintf(os.Stderr, "ucatload: /v1/stats pool snapshot unavailable: %v\n", err)
	} else {
		doc.Pool = pool
		fmt.Printf("server pool: %s, %d frames, %d stripes, hit rate %.3f\n",
			pool.Policy, pool.Frames, pool.Stripes, pool.HitRate)
	}

	if p.load != "" {
		chk, err := runCheck(client, &p)
		if err != nil {
			return err
		}
		doc.Determinism = chk
		fmt.Printf("determinism: %d queries, %d mismatches\n", chk.Queries, chk.Mismatches)
		if chk.Mismatches != 0 {
			writeDoc(&doc, p.out)
			return fmt.Errorf("served answers diverged from direct execution")
		}
	}

	return writeDoc(&doc, p.out)
}

// benchDoc is the BENCH_serve.json schema.
type benchDoc struct {
	Addr        string    `json:"addr"`
	Duration    string    `json:"duration_per_level"`
	Seed        int64     `json:"seed"`
	When        string    `json:"when"`
	Closed      []level   `json:"closed_loop,omitempty"`
	Open        []level   `json:"open_loop,omitempty"`
	Determinism *checkDoc `json:"determinism,omitempty"`
	Pool        *poolDoc  `json:"server_pool,omitempty"`
}

// poolDoc mirrors the shared-pool section of ucatd's /v1/stats, captured
// after the sweeps so the document records the pool configuration and
// lifetime hit rate behind the latency numbers.
type poolDoc struct {
	Policy    string  `json:"policy"`
	Frames    int     `json:"frames"`
	Stripes   int     `json:"stripes"`
	Occupancy int     `json:"occupancy"`
	Reads     uint64  `json:"reads"`
	Hits      uint64  `json:"hits"`
	HitRate   float64 `json:"hit_rate"`
	Evictions uint64  `json:"evictions"`
}

// level is one offered-load measurement.
type level struct {
	Clients       int     `json:"clients,omitempty"`
	OfferedQPS    int     `json:"offered_qps,omitempty"`
	Sent          uint64  `json:"sent"`
	Completed     uint64  `json:"completed"`
	Rejected      uint64  `json:"rejected"`
	Timeouts      uint64  `json:"timeouts"`
	Errors        uint64  `json:"errors"`
	ThroughputQPS float64 `json:"throughput_qps"`
	RejectionRate float64 `json:"rejection_rate"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`

	// SlowQueries (-slowlog) is the server's view of this level's worst
	// requests: the slowest flight records newly retained during the sweep
	// point, span trees included — the document explains its own tail.
	SlowQueries []obs.RequestRecord `json:"slow_queries,omitempty"`
}

// String renders a level as a one-line summary for the terminal.
func (l level) String() string {
	return fmt.Sprintf("%8.1f q/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  rejected %5.1f%%",
		l.ThroughputQPS, l.P50MS, l.P95MS, l.P99MS, 100*l.RejectionRate)
}

// checkDoc records the served-vs-direct determinism comparison.
type checkDoc struct {
	Queries    int `json:"queries"`
	Mismatches int `json:"mismatches"`
}

// counters accumulates per-level outcomes across client goroutines.
type counters struct {
	sent, completed, rejected, timeouts, errors atomic.Uint64

	mu   sync.Mutex
	lats []float64 // milliseconds, completed queries only
}

func (c *counters) observe(ms float64) {
	c.mu.Lock()
	c.lats = append(c.lats, ms)
	c.mu.Unlock()
}

// finish folds the counters into a level document.
func (c *counters) finish(elapsed time.Duration) level {
	sort.Float64s(c.lats)
	q := func(p float64) float64 {
		if len(c.lats) == 0 {
			return 0
		}
		i := int(p * float64(len(c.lats)))
		if i >= len(c.lats) {
			i = len(c.lats) - 1
		}
		return c.lats[i]
	}
	sent := c.sent.Load()
	lvl := level{
		Sent:          sent,
		Completed:     c.completed.Load(),
		Rejected:      c.rejected.Load(),
		Timeouts:      c.timeouts.Load(),
		Errors:        c.errors.Load(),
		ThroughputQPS: float64(c.completed.Load()) / elapsed.Seconds(),
		P50MS:         q(0.50),
		P95MS:         q(0.95),
		P99MS:         q(0.99),
	}
	if sent > 0 {
		lvl.RejectionRate = float64(lvl.Rejected) / float64(sent)
	}
	return lvl
}

// runClosed measures one closed-loop level: n clients in lockstep with the
// server, each issuing its next query as soon as the previous one answers.
func runClosed(client *http.Client, p *params, n int) level {
	var c counters
	deadline := time.Now().Add(p.dur)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.seed + int64(id)))
			for time.Now().Before(deadline) {
				issue(client, p, rng, &c)
			}
		}(i)
	}
	start := time.Now()
	wg.Wait()
	return levelWithClients(c.finish(time.Since(start)), n, 0)
}

// runOpen measures one open-loop level: queries depart on a fixed schedule
// whether or not earlier ones have answered, so a saturated server shows up
// as rejections rather than coordinated slowdown.
func runOpen(client *http.Client, p *params, qps int) level {
	var c counters
	interval := time.Second / time.Duration(qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	rng := rand.New(rand.NewSource(p.seed))
	var wg sync.WaitGroup
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for time.Since(start) < p.dur {
		<-tick.C
		body := genBody(p, rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(client, p, body, &c)
		}()
	}
	wg.Wait()
	return levelWithClients(c.finish(time.Since(start)), 0, qps)
}

// levelWithClients stamps the load descriptor onto a finished level.
func levelWithClients(lvl level, clients, qps int) level {
	lvl.Clients = clients
	lvl.OfferedQPS = qps
	return lvl
}

// genQuery draws one random query distribution over the configured domain.
func genQuery(p *params, rng *rand.Rand) uda.UDA {
	items := make(map[uint32]float64, p.items)
	for len(items) < p.items {
		items[uint32(rng.Intn(p.domain))] = 0
	}
	rest := 1.0
	pairs := make([]uda.Pair, 0, len(items))
	for it := range items {
		pr := rest * (0.3 + 0.5*rng.Float64())
		rest -= pr
		pairs = append(pairs, uda.Pair{Item: it, Prob: pr})
	}
	u, err := uda.New(pairs...)
	if err != nil {
		panic(err) // generated mass is always in (0,1]
	}
	return u
}

// queryString renders a distribution in the item:prob wire notation.
func queryString(q uda.UDA) string {
	var b strings.Builder
	for i, pr := range q.Pairs() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%g", pr.Item, pr.Prob)
	}
	return b.String()
}

// genBody renders one random PETQ request body.
func genBody(p *params, rng *rand.Rand) []byte {
	req := map[string]any{"kind": "petq", "query": queryString(genQuery(p, rng)), "tau": p.tau}
	b, _ := json.Marshal(req)
	return b
}

// issue generates and posts one query, charging the outcome to c.
func issue(client *http.Client, p *params, rng *rand.Rand, c *counters) {
	post(client, p, genBody(p, rng), c)
}

// post sends one request body and classifies the response.
func post(client *http.Client, p *params, body []byte, c *counters) {
	c.sent.Add(1)
	start := time.Now()
	resp, err := client.Post("http://"+p.addr+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		c.errors.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		c.completed.Add(1)
		c.observe(float64(time.Since(start).Microseconds()) / 1000)
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		c.rejected.Add(1)
	case http.StatusRequestTimeout:
		c.timeouts.Add(1)
	default:
		c.errors.Add(1)
	}
}

// fetchPoolStats grabs the shared-pool section from ucatd's /v1/stats.
func fetchPoolStats(client *http.Client, p *params) (*poolDoc, error) {
	resp, err := client.Get("http://" + p.addr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var payload struct {
		Pool poolDoc `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	return &payload.Pool, nil
}

// slowlogMark records where the server's trace-ID sequence stands before a
// sweep point, so fetchSlowSince can keep only records the level itself
// produced. Returns 0 (keep everything) when -slowlog is off or the endpoint
// is unavailable.
func slowlogMark(client *http.Client, p *params) uint64 {
	if !p.slowlog {
		return 0
	}
	resp, err := client.Get("http://" + p.addr + "/debug/requests?limit=1")
	if err != nil {
		return 0
	}
	defer func() { _ = resp.Body.Close() }()
	var recs []obs.RequestRecord
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&recs) != nil || len(recs) == 0 {
		return 0
	}
	return recs[0].ID
}

// fetchSlowSince pulls the slow-request rings from /debug/requests and keeps
// the slowlogTop slowest records this sweep point added (trace IDs beyond
// since). A server without the endpoint degrades to an absent field, never a
// failed benchmark.
func fetchSlowSince(client *http.Client, p *params, since uint64) []obs.RequestRecord {
	if !p.slowlog {
		return nil
	}
	resp, err := client.Get("http://" + p.addr + "/debug/requests?outcome=slow&limit=1000")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucatload: -slowlog: %v\n", err)
		return nil
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "ucatload: -slowlog: /debug/requests status %d\n", resp.StatusCode)
		return nil
	}
	var recs []obs.RequestRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		fmt.Fprintf(os.Stderr, "ucatload: -slowlog: decoding /debug/requests: %v\n", err)
		return nil
	}
	fresh := recs[:0]
	for _, r := range recs {
		if r.ID > since {
			fresh = append(fresh, r)
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].LatencyNS > fresh[j].LatencyNS })
	if len(fresh) > slowlogTop {
		fresh = fresh[:slowlogTop]
	}
	return fresh
}

// runCheck replays a deterministic PETQ workload through the server and
// directly against the same snapshot, comparing every answer bit for bit.
func runCheck(client *http.Client, p *params) (*checkDoc, error) {
	rel, err := core.LoadRelationFile(p.load)
	if err != nil {
		return nil, fmt.Errorf("determinism check: %w", err)
	}
	rng := rand.New(rand.NewSource(p.seed + 7919))
	chk := &checkDoc{Queries: p.check}
	for i := 0; i < p.check; i++ {
		q := genQuery(p, rng)
		want, err := rel.PETQ(q, p.tau)
		if err != nil {
			return nil, fmt.Errorf("direct PETQ: %w", err)
		}

		body, _ := json.Marshal(map[string]any{
			"kind": "petq", "query": queryString(q), "tau": p.tau,
			"limit": len(want) + 1,
		})
		resp, err := client.Post("http://"+p.addr+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("served PETQ: %w", err)
		}
		var qr struct {
			Count   int `json:"count"`
			Matches []struct {
				TID  uint32  `json:"tid"`
				Prob float64 `json:"prob"`
			} `json:"matches"`
		}
		err = json.NewDecoder(resp.Body).Decode(&qr)
		_ = resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("served PETQ: status %d, decode err %v", resp.StatusCode, err)
		}

		same := qr.Count == len(want) && len(qr.Matches) == len(want)
		if same {
			for j, m := range qr.Matches {
				//ucatlint:ignore floatcmp the determinism check demands bit-identical served and direct answers
				if m.TID != want[j].TID || m.Prob != want[j].Prob {
					same = false
					break
				}
			}
		}
		if !same {
			chk.Mismatches++
		}
	}
	return chk, nil
}

// writeDoc renders the benchmark document to path (and always to stdout as
// a final summary line).
func writeDoc(doc *benchDoc, path string) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path != "" {
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("non-positive value %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}

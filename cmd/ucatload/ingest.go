package main

// Concurrent-ingest mode (-ingestclients): writers stream insert batches at
// POST /v1/ingest for the whole run — throughout the query sweeps AND the
// -load determinism check — and the document records the sustained durable
// throughput next to the query numbers. The writers draw their items from a
// domain disjoint from the generated queries' (ingestBase onward), so every
// ingested tuple has zero match probability for every check query and the
// served-vs-direct comparison stays exact while the indexes are mutating
// underneath it: the check passing under load is the point.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ingestBase is the first item id ingest distributions draw from, far above
// any realistic -domain so write traffic never intersects query support.
const ingestBase = 1 << 20

// ingestSweep is one server configuration's ingest measurement in
// BENCH_ingest.json; scripts/bench_ingest.sh accumulates one per
// -groupcommit setting with -merge.
type ingestSweep struct {
	Label       string  `json:"label,omitempty"` // server config, e.g. "groupcommit=2ms"
	Clients     int     `json:"clients"`
	Batch       int     `json:"batch"` // ops per request
	Ops         uint64  `json:"ops"`   // durably acked operations
	Errors      uint64  `json:"errors"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50MS       float64 `json:"p50_ms"` // per-request durable-ack latency
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	LastLSN     uint64  `json:"last_lsn"`
	Fsyncs      uint64  `json:"fsyncs"`        // fsyncs the run issued (from ucat_ingest_wal_fsyncs_total)
	OpsPerFsync float64 `json:"ops_per_fsync"` // group-commit coalescing factor
}

// String renders the sweep as a one-line summary for the terminal.
func (is ingestSweep) String() string {
	return fmt.Sprintf("%8.1f ops/s  p50 %6.2fms  p99 %6.2fms  %6.1f ops/fsync",
		is.OpsPerSec, is.P50MS, is.P99MS, is.OpsPerFsync)
}

// ingestRun is the live state of the writer goroutines.
type ingestRun struct {
	c       counters
	stop    chan struct{}
	wg      sync.WaitGroup
	start   time.Time
	fsyncs0 uint64
}

// startIngest probes the endpoint once (failing fast on a read-only server)
// and launches the writers.
func startIngest(client *http.Client, p *params) (*ingestRun, error) {
	r := &ingestRun{stop: make(chan struct{})}
	if st, err := fetchIngestStats(client, p); err == nil {
		r.fsyncs0 = st.WAL.Fsyncs
	}
	status, _, err := postIngestBatch(client, p, ingestBody(rand.New(rand.NewSource(p.seed)), 1))
	if err != nil {
		return nil, fmt.Errorf("-ingestclients: probing /v1/ingest: %w", err)
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("-ingestclients: /v1/ingest answered %d (is ucatd running with -wal?)", status)
	}
	r.start = time.Now()
	for i := 0; i < p.ingestClients; i++ {
		r.wg.Add(1)
		go func(id int) {
			defer r.wg.Done()
			rng := rand.New(rand.NewSource(p.seed + 1000003*int64(id+1)))
			for {
				select {
				case <-r.stop:
					return
				default:
				}
				body := ingestBody(rng, p.ingestBatch)
				r.c.sent.Add(1)
				t0 := time.Now()
				status, _, err := postIngestBatch(client, p, body)
				if err != nil || status != http.StatusOK {
					r.c.errors.Add(1)
					continue
				}
				r.c.completed.Add(uint64(p.ingestBatch))
				r.c.observe(float64(time.Since(t0).Microseconds()) / 1000)
			}
		}(i)
	}
	return r, nil
}

// finish stops the writers and folds the run into a document entry.
func (r *ingestRun) finish(client *http.Client, p *params) ingestSweep {
	close(r.stop)
	r.wg.Wait()
	elapsed := time.Since(r.start)
	lvl := r.c.finish(elapsed)
	is := ingestSweep{
		Label:     p.ingestLabel,
		Clients:   p.ingestClients,
		Batch:     p.ingestBatch,
		Ops:       lvl.Completed,
		Errors:    lvl.Errors,
		OpsPerSec: float64(lvl.Completed) / elapsed.Seconds(),
		P50MS:     lvl.P50MS,
		P95MS:     lvl.P95MS,
		P99MS:     lvl.P99MS,
	}
	if st, err := fetchIngestStats(client, p); err == nil {
		is.LastLSN = st.WAL.DurableLSN
		is.Fsyncs = st.WAL.Fsyncs - r.fsyncs0
		if is.Fsyncs > 0 {
			is.OpsPerFsync = float64(is.Ops) / float64(is.Fsyncs)
		}
	}
	return is
}

// ingestBody renders one insert batch: n two-item distributions over the
// disjoint ingest domain.
func ingestBody(rng *rand.Rand, n int) []byte {
	var b strings.Builder
	b.WriteString(`{"ops":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		item := ingestBase + rng.Intn(1024)
		fmt.Fprintf(&b, `{"op":"insert","dist":"%d:0.6,%d:0.4"}`, item, item+1)
	}
	b.WriteString(`]}`)
	return []byte(b.String())
}

// postIngestBatch sends one batch and returns the HTTP status.
func postIngestBatch(client *http.Client, p *params, body []byte) (int, []byte, error) {
	resp, err := client.Post("http://"+p.addr+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, payload, nil
}

// ingestStatsDoc mirrors the ingest section of ucatd's /v1/stats.
type ingestStatsDoc struct {
	DeltaOps int    `json:"delta_ops"`
	Epoch    uint64 `json:"epoch"`
	Tuples   int    `json:"tuples"`
	WAL      struct {
		DurableLSN uint64 `json:"durable_lsn"`
		Fsyncs     uint64 `json:"fsyncs"`
	} `json:"wal"`
}

// fetchIngestStats grabs the ingest section from /v1/stats; absent on a
// read-only server.
func fetchIngestStats(client *http.Client, p *params) (*ingestStatsDoc, error) {
	resp, err := client.Get("http://" + p.addr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var payload struct {
		Ingest *ingestStatsDoc `json:"ingest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	if payload.Ingest == nil {
		return nil, fmt.Errorf("no ingest section (read-only server)")
	}
	return payload.Ingest, nil
}

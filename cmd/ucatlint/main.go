// Command ucatlint is the project's static invariant checker. It enforces,
// at the syntax-tree level, the properties the paper's evaluation depends
// on: probability comparisons go through epsilon helpers, every page access
// flows through the counted buffer pool, release errors are observed,
// experiments use seeded randomness, and buffer-pool pins are balanced.
//
// Usage:
//
//	ucatlint [-checks floatcmp,ioaccount,...] [packages]
//
// Packages are directory patterns relative to the module root ("./...",
// "./internal/uda", "./cmd/..."); the default is "./...". Exit status is 0
// when the code is clean, 1 when diagnostics were reported, and 2 on usage
// or load errors.
//
// Findings that are intentional can be suppressed with a comment on the
// offending line or the line above:
//
//	//ucatlint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"ucat/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ucatlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	checksFlag := fs.String("checks", "all", "comma-separated checks to run (default: all)")
	listFlag := fs.Bool("list", false, "list available checks and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ucatlint [-checks names] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	checks, err := lint.SelectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucatlint:", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucatlint:", err)
		return 2
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucatlint:", err)
		return 2
	}
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.Load(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucatlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, checks)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ucatlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

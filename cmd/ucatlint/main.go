// Command ucatlint is the project's static invariant checker. It enforces
// the properties the paper's evaluation depends on: probability comparisons
// go through epsilon helpers, every page access flows through the counted
// buffer pool, release errors are observed, experiments use seeded
// randomness, and buffer-pool pins are balanced. The interprocedural checks
// (lockorder, ctxflow, hotalloc, atomicmix) additionally analyze the whole
// module's call graph (see DESIGN.md §17).
//
// Usage:
//
//	ucatlint [-checks floatcmp,ioaccount,...] [-format text|json]
//	         [-baseline file [-writebaseline]] [packages]
//
// Packages are directory patterns relative to the module root ("./...",
// "./internal/uda", "./cmd/..."); the default is "./...". Exit status is 0
// when no new error-severity findings were reported, 1 when some were, and
// 2 on usage or load errors. Warn-severity findings are printed but never
// affect the exit status.
//
// With -baseline, findings recorded in the given file are filtered out and
// only new findings are reported — this is how a new check lands before the
// tree is clean. -writebaseline records the current findings into the file
// and exits. Stale baseline entries (whose finding no longer occurs) are
// reported on stderr so the file shrinks over time.
//
// Findings that are intentional can be suppressed with a comment on the
// offending line or the line above:
//
//	//ucatlint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"ucat/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ucatlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	checksFlag := fs.String("checks", "all", "comma-separated checks to run (default: all)")
	listFlag := fs.Bool("list", false, "list available checks and exit")
	formatFlag := fs.String("format", "text", "output format: text or json")
	baselineFlag := fs.String("baseline", "", "baseline file of accepted findings; only new findings are reported")
	writeBaseline := fs.Bool("writebaseline", false, "write the current findings to the -baseline file and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ucatlint [-checks names] [-list] [-format text|json] [-baseline file [-writebaseline]] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, c := range lint.AllChecks() {
			sev := c.Severity
			if sev == "" {
				sev = lint.SeverityError
			}
			fmt.Printf("%-12s %-5s  %s\n", c.Name, sev, c.Doc)
		}
		return 0
	}
	if *formatFlag != "text" && *formatFlag != "json" {
		fmt.Fprintf(os.Stderr, "ucatlint: unknown format %q (want text or json)\n", *formatFlag)
		return 2
	}
	if *writeBaseline && *baselineFlag == "" {
		fmt.Fprintln(os.Stderr, "ucatlint: -writebaseline requires -baseline")
		return 2
	}
	checks, err := lint.SelectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucatlint:", err)
		return 2
	}
	// Load the baseline before the (slow) package load so a typo'd path
	// fails immediately.
	var base *lint.Baseline
	if *baselineFlag != "" && !*writeBaseline {
		if base, err = lint.LoadBaseline(*baselineFlag); err != nil {
			fmt.Fprintln(os.Stderr, "ucatlint:", err)
			return 2
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucatlint:", err)
		return 2
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucatlint:", err)
		return 2
	}
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.Load(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucatlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, checks)

	if *writeBaseline {
		if err := lint.NewBaseline(diags, root).Save(*baselineFlag); err != nil {
			fmt.Fprintln(os.Stderr, "ucatlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "ucatlint: wrote %d finding(s) to %s\n", len(diags), *baselineFlag)
		return 0
	}
	if base != nil {
		var matched, stale int
		diags, matched, stale = base.Filter(diags, root)
		if matched > 0 {
			fmt.Fprintf(os.Stderr, "ucatlint: %d finding(s) matched the baseline\n", matched)
		}
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "ucatlint: %d stale baseline entr(ies) no longer match anything; prune %s\n", stale, *baselineFlag)
		}
	}

	if *formatFlag == "json" {
		if err := lint.WriteJSON(os.Stdout, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "ucatlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	errors, warns := 0, 0
	for _, d := range diags {
		if d.Severity == lint.SeverityWarn {
			warns++
		} else {
			errors++
		}
	}
	if errors > 0 || warns > 0 {
		fmt.Fprintf(os.Stderr, "ucatlint: %d error(s), %d warning(s) in %d package(s)\n", errors, warns, len(pkgs))
	}
	if errors > 0 {
		return 1
	}
	return 0
}

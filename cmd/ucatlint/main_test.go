package main

import (
	"os"
	"path/filepath"
	"testing"

	"ucat/internal/lint"
)

func TestRunList(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("run(-list) = %d, want 0", got)
	}
}

func TestRunBadFlagsExitTwo(t *testing.T) {
	if got := run([]string{"-definitely-not-a-flag"}); got != 2 {
		t.Errorf("run with bad flag = %d, want 2", got)
	}
	if got := run([]string{"-checks", "nosuchcheck"}); got != 2 {
		t.Errorf("run with unknown check = %d, want 2", got)
	}
	if got := run([]string{"./no/such/package"}); got != 2 {
		t.Errorf("run with missing package = %d, want 2", got)
	}
	if got := run([]string{"-format", "xml"}); got != 2 {
		t.Errorf("run with unknown format = %d, want 2", got)
	}
	if got := run([]string{"-writebaseline"}); got != 2 {
		t.Errorf("run with -writebaseline but no -baseline = %d, want 2", got)
	}
	if got := run([]string{"-baseline", "/no/such/baseline.json", "./internal/lint"}); got != 2 {
		t.Errorf("run with missing baseline file = %d, want 2", got)
	}
}

func TestRunCleanAndViolatingPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the stdlib from source; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := lint.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}

	// The lint package itself must be clean.
	if got := run([]string{"./internal/lint"}); got != 0 {
		t.Errorf("run(./internal/lint) = %d, want 0", got)
	}

	// A synthetic violation must drive the exit status to 1.
	dir, err := os.MkdirTemp(root, "ucatlint-violation-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	src := "package violation\n\nfunc equalProb(a, b float64) bool { return a == b }\n"
	if err := os.WriteFile(filepath.Join(dir, "v.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"./" + filepath.Base(dir)}); got != 1 {
		t.Errorf("run on synthetic floatcmp violation = %d, want 1", got)
	}

	// JSON output keeps the exit semantics.
	if got := run([]string{"-format", "json", "./" + filepath.Base(dir)}); got != 1 {
		t.Errorf("run -format json on violation = %d, want 1", got)
	}

	// The baseline workflow: record the finding, then a baselined run is
	// clean; deleting the entry resurfaces it.
	basePath := filepath.Join(dir, "baseline.json")
	if got := run([]string{"-baseline", basePath, "-writebaseline", "./" + filepath.Base(dir)}); got != 0 {
		t.Fatalf("run -writebaseline = %d, want 0", got)
	}
	if got := run([]string{"-baseline", basePath, "./" + filepath.Base(dir)}); got != 0 {
		t.Errorf("run with recorded baseline = %d, want 0", got)
	}
	empty := lint.Baseline{}
	if err := empty.Save(basePath); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-baseline", basePath, "./" + filepath.Base(dir)}); got != 1 {
		t.Errorf("run with emptied baseline = %d, want 1", got)
	}
}

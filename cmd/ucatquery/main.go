// Command ucatquery loads one of the paper's datasets (or a previously
// saved relation) into a chosen index and runs a probabilistic query against
// it, reporting the answers and the disk I/Os the query cost. With -addr it
// instead sends the query to a running ucatd, over either the JSON or the
// binary ucatwire protocol (-proto).
//
// Usage:
//
//	ucatquery -dataset crm1 -n 10000 -index pdr -query "3:0.7,8:0.3" -tau 0.2
//	ucatquery -dataset uniform -index inverted -strategy column-pruning -query "0:0.5,1:0.5" -k 10
//	ucatquery -dataset crm2 -n 5000 -index pdr -query "1:1.0" -dstq 0.5 -div KL
//	ucatquery -dataset gen3 -index pdr -query "10:1.0" -tau 0.3 -window 2
//	ucatquery -dataset crm1 -index pdr -save rel.ucat          # build once
//	ucatquery -load rel.ucat -query "3:1.0" -tau 0.5           # query later
//	ucatquery -addr localhost:8080 -query "3:1.0" -tau 0.5     # ask a ucatd
//	ucatquery -addr localhost:8080 -proto binary -query "3:1.0" -k 5
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"ucat/internal/cliutil"
	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/obs"
	"ucat/internal/wire"
)

func main() {
	var (
		dsName   = flag.String("dataset", "uniform", "uniform | pairwise | gen3 | crm1 | crm2")
		n        = flag.Int("n", 10000, "tuple count")
		domain   = flag.Int("domain", 50, "domain size (gen3 only)")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		index    = flag.String("index", "pdr", "scan | inverted | pdr")
		strategy = flag.String("strategy", "highest-prob-first", "inverted-index strategy")
		queryStr = flag.String("query", "", "query UDA as item:prob,item:prob,...")
		tau      = flag.Float64("tau", -1, "PETQ threshold (probability)")
		k        = flag.Int("k", 0, "top-k query size")
		window   = flag.Uint("window", 0, "window width c for relaxed equality (ordered domains)")
		dstq     = flag.Float64("dstq", -1, "distributional similarity threshold")
		div      = flag.String("div", "L1", "divergence for -dstq: L1 | L2 | KL")
		limit    = flag.Int("limit", 20, "max answers to print")
		save     = flag.String("save", "", "save the built relation to this file")
		load     = flag.String("load", "", "load a relation from this file instead of building one")
		stats    = flag.Bool("stats", false, "print index statistics")
		timeout  = flag.Duration("timeout", 0, "per-query deadline (0 = none); a query past it stops at the next page access")
		debug    = flag.String("debugaddr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running (e.g. localhost:6060)")
		addr     = flag.String("addr", "", "send the query to a running ucatd at this host:port instead of executing locally")
		proto    = flag.String("proto", "json", "wire protocol for -addr: json | binary")
	)
	flag.Parse()

	if *debug != "" {
		ds, err := obs.ServeDebug(*debug, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucatquery: debugaddr: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = ds.Close() }()
		fmt.Fprintf(os.Stderr, "debug server on http://%s — /metrics /debug/vars /debug/pprof\n", ds.Addr)
	}

	if err := run(params{
		dsName: *dsName, n: *n, domain: *domain, seed: *seed,
		index: *index, strategy: *strategy, queryStr: *queryStr,
		tau: *tau, k: *k, window: uint32(*window), dstq: *dstq, div: *div,
		limit: *limit, save: *save, load: *load, stats: *stats,
		timeout: *timeout, addr: *addr, proto: *proto,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "ucatquery: %v\n", err)
		os.Exit(1)
	}
}

type params struct {
	dsName          string
	n, domain       int
	seed            int64
	index, strategy string
	queryStr        string
	tau, dstq       float64
	k               int
	window          uint32
	div             string
	limit           int
	save, load      string
	stats           bool
	timeout         time.Duration
	addr, proto     string
}

func run(p params) error {
	if p.addr != "" {
		return runRemote(p)
	}
	rel, err := obtainRelation(p)
	if err != nil {
		return err
	}

	if p.save != "" {
		if err := rel.SaveFile(p.save); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved relation (%d tuples) to %s\n", rel.Len(), p.save)
	}
	if p.stats {
		st, err := rel.IndexStats()
		if err != nil {
			return err
		}
		fmt.Println(st)
	}

	hasQuery := p.tau >= 0 || p.k > 0 || p.dstq >= 0
	if !hasQuery {
		if p.save == "" && !p.stats {
			return fmt.Errorf("specify a query type (-tau, -k, or -dstq), -save, or -stats")
		}
		return nil
	}

	q, err := cliutil.ParseUDA(p.queryStr)
	if err != nil {
		return err
	}
	// Query under the paper's buffer discipline.
	if err := rel.Pool().Resize(100); err != nil {
		return err
	}
	rel.Pool().ResetStats()

	// All query kinds run through one Reader; -timeout bounds them with a
	// context so runaway scans stop at the next page access.
	rd := rel.Reader(nil)
	if p.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
		defer cancel()
		rd = rd.WithContext(ctx)
	}

	switch {
	case p.dstq >= 0:
		dv, err := cliutil.ParseDivergence(p.div)
		if err != nil {
			return err
		}
		ns, err := rd.DSTQ(q, p.dstq, dv)
		if err != nil {
			return err
		}
		fmt.Printf("DSTQ(%v, %g, %s): %d answers\n", q, p.dstq, dv, len(ns))
		for i, m := range ns {
			if i == p.limit {
				fmt.Printf("... %d more\n", len(ns)-p.limit)
				break
			}
			fmt.Printf("  tid=%-8d dist=%.6f\n", m.TID, m.Dist)
		}
	case p.k > 0 && p.window > 0:
		ms, err := rd.WindowTopK(q, p.window, p.k)
		if err != nil {
			return err
		}
		fmt.Printf("Window-top-%d(%v, c=%d): %d answers\n", p.k, q, p.window, len(ms))
		printMatches(ms, p.limit)
	case p.k > 0:
		ms, err := rd.TopK(q, p.k)
		if err != nil {
			return err
		}
		fmt.Printf("PETQ-top-%d(%v): %d answers\n", p.k, q, len(ms))
		printMatches(ms, p.limit)
	case p.window > 0:
		ms, err := rd.WindowPETQ(q, p.window, p.tau)
		if err != nil {
			return err
		}
		fmt.Printf("WindowPETQ(%v, c=%d, %g): %d answers\n", q, p.window, p.tau, len(ms))
		printMatches(ms, p.limit)
	default:
		ms, err := rd.PETQ(q, p.tau)
		if err != nil {
			return err
		}
		fmt.Printf("PETQ(%v, %g): %d answers\n", q, p.tau, len(ms))
		printMatches(ms, p.limit)
	}

	st := rel.Pool().Stats()
	fmt.Printf("I/O: %d (reads %d, writes %d, pool hits %d, hit rate %.3f)\n",
		st.IOs(), st.Reads, st.Writes, st.Hits, st.HitRate())
	return nil
}

func obtainRelation(p params) (*core.Relation, error) {
	if p.load != "" {
		rel, err := core.LoadRelationFile(p.load)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "loaded %s relation (%d tuples) from %s\n", rel.Kind(), rel.Len(), p.load)
		return rel, nil
	}

	var d *dataset.Dataset
	switch p.dsName {
	case "uniform":
		d = dataset.Uniform(p.seed, p.n)
	case "pairwise":
		d = dataset.Pairwise(p.seed, p.n)
	case "gen3":
		d = dataset.Gen3(p.seed, p.n, p.domain)
	case "crm1":
		d = dataset.CRM1Like(p.seed, p.n)
	case "crm2":
		d = dataset.CRM2Like(p.seed, p.n)
	default:
		return nil, fmt.Errorf("unknown dataset %q", p.dsName)
	}

	opts := core.Options{PoolFrames: 4096}
	switch p.index {
	case "scan":
		opts.Kind = core.ScanOnly
	case "inverted":
		opts.Kind = core.InvertedIndex
		s, err := cliutil.ParseStrategy(p.strategy)
		if err != nil {
			return nil, err
		}
		opts.InvStrategy = s
	case "pdr":
		opts.Kind = core.PDRTree
	default:
		return nil, fmt.Errorf("unknown index %q", p.index)
	}

	rel, err := core.NewRelation(opts)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "building %s index over %d %s tuples...\n", p.index, len(d.Tuples), d.Name)
	for _, u := range d.Tuples {
		if _, err := rel.Insert(u); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// runRemote sends the query to a running ucatd over the chosen protocol and
// prints the served answer in the same shape the local paths use, plus the
// server-side cost the response carries (trace ID, batch membership, reads).
func runRemote(p params) error {
	q, err := cliutil.ParseUDA(p.queryStr)
	if err != nil {
		return err
	}
	kind := remoteKind(p)
	if kind == "petq" && p.tau < 0 {
		return fmt.Errorf("specify a query type (-tau, -k, -window, or -dstq) with -addr")
	}

	var body []byte
	ct := "application/json"
	switch p.proto {
	case "json":
		req := map[string]any{"kind": kind, "query": p.queryStr, "limit": p.limit}
		switch kind {
		case "petq":
			req["tau"] = p.tau
		case "topk":
			req["k"] = p.k
		case "window":
			req["c"] = p.window
			req["tau"] = p.tau
		case "windowtopk":
			req["c"] = p.window
			req["k"] = p.k
		case "dstq":
			req["td"] = p.dstq
			req["div"] = p.div
		}
		if p.timeout > 0 {
			req["timeout_ms"] = p.timeout.Milliseconds()
		}
		if body, err = json.Marshal(req); err != nil {
			return err
		}
	case "binary":
		ct = wire.ContentType
		wk, ok := wire.KindOf(kind)
		if !ok {
			return fmt.Errorf("kind %q has no wire encoding", kind)
		}
		wr := wire.Request{Kind: wk, Pairs: q.Pairs(), Limit: p.limit}
		switch kind {
		case "petq":
			wr.Tau = p.tau
		case "topk":
			wr.K = p.k
		case "window":
			wr.C = p.window
			wr.Tau = p.tau
		case "windowtopk":
			wr.C = p.window
			wr.K = p.k
		case "dstq":
			dv, err := cliutil.ParseDivergence(p.div)
			if err != nil {
				return err
			}
			wr.TD = p.dstq
			wr.Div = dv
		}
		if p.timeout > 0 {
			wr.TimeoutMS = p.timeout.Milliseconds()
		}
		body = wire.AppendRequest(nil, &wr)
	default:
		return fmt.Errorf("-proto %q: want json or binary", p.proto)
	}

	client := &http.Client{Timeout: p.timeout + 30*time.Second}
	resp, err := client.Post("http://"+p.addr+"/v1/query", ct, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()

	var rsp wire.Response
	if p.proto == "binary" {
		frame, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("transport status %d (binary errors arrive in-band)", resp.StatusCode)
		}
		ftype, fbody, err := wire.DecodeFrame(frame)
		if err != nil {
			return err
		}
		if ftype != wire.FrameResponse {
			return fmt.Errorf("frame type %#x, want response", ftype)
		}
		if err := wire.DecodeResponse(fbody, &rsp); err != nil {
			return err
		}
		if rsp.Status != 0 && rsp.Status != http.StatusOK {
			return fmt.Errorf("server status %d: %s", rsp.Status, rsp.Err)
		}
	} else {
		var jr struct {
			TraceID   uint64          `json:"trace_id"`
			Count     int             `json:"count"`
			Truncated bool            `json:"truncated"`
			Matches   []wire.Match    `json:"matches"`
			Neighbors []wire.Neighbor `json:"neighbors"`
			ElapsedNS int64           `json:"elapsed_ns"`
			Batched   bool            `json:"batched"`
			BatchSize int             `json:"batch_size"`
			Error     string          `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("server status %d: %s", resp.StatusCode, jr.Error)
		}
		rsp = wire.Response{
			TraceID: jr.TraceID, Count: jr.Count, Truncated: jr.Truncated,
			Matches: jr.Matches, Neighbors: jr.Neighbors,
			ElapsedNS: jr.ElapsedNS, Batched: jr.Batched, BatchSize: jr.BatchSize,
		}
	}

	fmt.Printf("%s(%v) via %s @ %s: %d answers", kind, q, p.proto, p.addr, rsp.Count)
	if rsp.Truncated {
		fmt.Printf(" (truncated at limit %d)", p.limit)
	}
	fmt.Println()
	for i, m := range rsp.Matches {
		if i == p.limit {
			fmt.Printf("... %d more\n", len(rsp.Matches)-p.limit)
			break
		}
		fmt.Printf("  tid=%-8d prob=%.6f\n", m.TID, m.Prob)
	}
	for i, n := range rsp.Neighbors {
		if i == p.limit {
			fmt.Printf("... %d more\n", len(rsp.Neighbors)-p.limit)
			break
		}
		fmt.Printf("  tid=%-8d dist=%.6f\n", n.TID, n.Dist)
	}
	fmt.Printf("server: trace=%d elapsed=%s", rsp.TraceID, time.Duration(rsp.ElapsedNS))
	if rsp.Batched {
		fmt.Printf(" batched(size=%d)", rsp.BatchSize)
	}
	fmt.Println()
	return nil
}

// remoteKind maps the flag combination onto the server's kind names, with
// the same precedence the local execution switch uses.
func remoteKind(p params) string {
	switch {
	case p.dstq >= 0:
		return "dstq"
	case p.k > 0 && p.window > 0:
		return "windowtopk"
	case p.k > 0:
		return "topk"
	case p.window > 0:
		return "window"
	default:
		return "petq"
	}
}

func printMatches(ms []core.Match, limit int) {
	for i, m := range ms {
		if i == limit {
			fmt.Printf("... %d more\n", len(ms)-limit)
			break
		}
		fmt.Printf("  tid=%-8d prob=%.6f\n", m.TID, m.Prob)
	}
}

package main

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"ucat/internal/cliutil"
	"ucat/internal/core"
)

// shell holds the interactive session state: one current relation plus the
// optional per-query deadline set by the -timeout flag.
type shell struct {
	rel     *core.Relation
	out     io.Writer
	timeout time.Duration
}

// queryReader returns a Reader for one query, bounded by the shell's
// -timeout deadline when one is set, plus the cancel the caller must defer.
func (sh *shell) queryReader() (*core.Reader, context.CancelFunc) {
	rd := sh.rel.Reader(nil)
	if sh.timeout <= 0 {
		return rd, func() {}
	}
	ctx, cancel := context.WithTimeout(context.Background(), sh.timeout)
	return rd.WithContext(ctx), cancel
}

// execute runs one command line; it returns io.EOF for "quit".
func (sh *shell) execute(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return nil
	}
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	switch cmd {
	case "help":
		sh.help()
		return nil
	case "quit", "exit":
		return io.EOF
	case "new":
		return sh.cmdNew(args)
	case "insert":
		return sh.cmdInsert(args)
	case "delete":
		return sh.cmdDelete(args)
	case "get":
		return sh.cmdGet(args)
	case "petq":
		return sh.cmdPETQ(args)
	case "topk":
		return sh.cmdTopK(args)
	case "window":
		return sh.cmdWindow(args)
	case "dstq":
		return sh.cmdDSTQ(args)
	case "explain":
		return sh.cmdExplain(args)
	case "estimate":
		return sh.cmdEstimate(args)
	case "stats":
		return sh.cmdStats()
	case "io":
		return sh.cmdIO()
	case "rebuild":
		return sh.cmdRebuild()
	case "check":
		return sh.cmdCheck()
	case "save":
		return sh.cmdSave(args)
	case "load":
		return sh.cmdLoad(args)
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func (sh *shell) help() {
	fmt.Fprint(sh.out, `commands:
  new <scan|inverted|pdr>          start an empty relation
  insert <item:prob,...>           add a tuple; prints its id
  delete <tid>                     remove a tuple
  get <tid>                        show a tuple
  petq <item:prob,...> <tau>       equality threshold query
  topk <item:prob,...> <k>         top-k equality query
  window <item:prob,...> <c> <tau> relaxed window equality (ordered domain)
  dstq <item:prob,...> <td> <div>  similarity query (div: L1|L2|KL)
  explain <petq|topk|window|dstq> <args...>
                                   run a query under a fresh 100-frame pool
                                   and print its trace span tree + I/O
  estimate <item:prob,...> <tau>   predicted selectivity (no I/O)
  stats                            index statistics
  io                               buffer pool counters since last 'io'
  rebuild                          compact + rebuild the index
  check                            verify heap/index integrity (sampled)
  save <file> / load <file>        persist / restore the relation
  quit
`)
}

func (sh *shell) need() error {
	if sh.rel == nil {
		return fmt.Errorf("no relation; run 'new <scan|inverted|pdr>' or 'load <file>'")
	}
	return nil
}

func (sh *shell) cmdNew(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: new <scan|inverted|pdr>")
	}
	var kind core.Kind
	switch args[0] {
	case "scan":
		kind = core.ScanOnly
	case "inverted":
		kind = core.InvertedIndex
	case "pdr":
		kind = core.PDRTree
	default:
		return fmt.Errorf("unknown index kind %q", args[0])
	}
	rel, err := core.NewRelation(core.Options{Kind: kind, PoolFrames: 1024})
	if err != nil {
		return err
	}
	sh.rel = rel
	fmt.Fprintf(sh.out, "new %s relation\n", kind)
	return nil
}

func (sh *shell) cmdInsert(args []string) error {
	if err := sh.need(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: insert <item:prob,...>")
	}
	u, err := cliutil.ParseUDA(args[0])
	if err != nil {
		return err
	}
	tid, err := sh.rel.Insert(u)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "tid %d\n", tid)
	return nil
}

func (sh *shell) cmdDelete(args []string) error {
	if err := sh.need(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: delete <tid>")
	}
	tid, err := strconv.ParseUint(args[0], 10, 32)
	if err != nil {
		return err
	}
	if err := sh.rel.Delete(uint32(tid)); err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "deleted %d\n", tid)
	return nil
}

func (sh *shell) cmdGet(args []string) error {
	if err := sh.need(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: get <tid>")
	}
	tid, err := strconv.ParseUint(args[0], 10, 32)
	if err != nil {
		return err
	}
	u, err := sh.rel.Get(uint32(tid))
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "%v (entropy %.3f bits)\n", u, u.Entropy())
	return nil
}

func (sh *shell) cmdPETQ(args []string) error {
	if err := sh.need(); err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: petq <item:prob,...> <tau>")
	}
	q, err := cliutil.ParseUDA(args[0])
	if err != nil {
		return err
	}
	tau, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return err
	}
	rd, cancel := sh.queryReader()
	defer cancel()
	ms, err := rd.PETQ(q, tau)
	if err != nil {
		return err
	}
	sh.printMatches(ms)
	return nil
}

func (sh *shell) cmdTopK(args []string) error {
	if err := sh.need(); err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: topk <item:prob,...> <k>")
	}
	q, err := cliutil.ParseUDA(args[0])
	if err != nil {
		return err
	}
	k, err := strconv.Atoi(args[1])
	if err != nil {
		return err
	}
	rd, cancel := sh.queryReader()
	defer cancel()
	ms, err := rd.TopK(q, k)
	if err != nil {
		return err
	}
	sh.printMatches(ms)
	return nil
}

func (sh *shell) cmdWindow(args []string) error {
	if err := sh.need(); err != nil {
		return err
	}
	if len(args) != 3 {
		return fmt.Errorf("usage: window <item:prob,...> <c> <tau>")
	}
	q, err := cliutil.ParseUDA(args[0])
	if err != nil {
		return err
	}
	c, err := strconv.ParseUint(args[1], 10, 32)
	if err != nil {
		return err
	}
	tau, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return err
	}
	rd, cancel := sh.queryReader()
	defer cancel()
	ms, err := rd.WindowPETQ(q, uint32(c), tau)
	if err != nil {
		return err
	}
	sh.printMatches(ms)
	return nil
}

func (sh *shell) cmdDSTQ(args []string) error {
	if err := sh.need(); err != nil {
		return err
	}
	if len(args) != 3 {
		return fmt.Errorf("usage: dstq <item:prob,...> <td> <L1|L2|KL>")
	}
	q, err := cliutil.ParseUDA(args[0])
	if err != nil {
		return err
	}
	td, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return err
	}
	div, err := cliutil.ParseDivergence(args[2])
	if err != nil {
		return err
	}
	rd, cancel := sh.queryReader()
	defer cancel()
	ns, err := rd.DSTQ(q, td, div)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "%d answers\n", len(ns))
	for i, n := range ns {
		if i == 20 {
			fmt.Fprintf(sh.out, "... %d more\n", len(ns)-20)
			break
		}
		fmt.Fprintf(sh.out, "  tid=%-8d dist=%.6f\n", n.TID, n.Dist)
	}
	return nil
}

func (sh *shell) cmdEstimate(args []string) error {
	if err := sh.need(); err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: estimate <item:prob,...> <tau>")
	}
	q, err := cliutil.ParseUDA(args[0])
	if err != nil {
		return err
	}
	tau, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return err
	}
	sel, err := sh.rel.EstimateSelectivity(q, tau)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "estimated selectivity %.2f%% (~%d tuples)\n",
		100*sel, int(sel*float64(sh.rel.Len())))
	return nil
}

func (sh *shell) cmdStats() error {
	if err := sh.need(); err != nil {
		return err
	}
	st, err := sh.rel.IndexStats()
	if err != nil {
		return err
	}
	fmt.Fprintln(sh.out, st)
	return nil
}

func (sh *shell) cmdIO() error {
	if err := sh.need(); err != nil {
		return err
	}
	fmt.Fprintln(sh.out, sh.rel.Pool().Stats())
	sh.rel.Pool().ResetStats()
	return nil
}

func (sh *shell) cmdRebuild() error {
	if err := sh.need(); err != nil {
		return err
	}
	reclaimed, err := sh.rel.Rebuild()
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "rebuilt; reclaimed %d pages\n", reclaimed)
	return nil
}

func (sh *shell) cmdCheck() error {
	if err := sh.need(); err != nil {
		return err
	}
	probed, err := sh.rel.CheckIntegrity(128)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "integrity ok (%d tuples probed)\n", probed)
	return nil
}

func (sh *shell) cmdSave(args []string) error {
	if err := sh.need(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: save <file>")
	}
	if err := sh.rel.SaveFile(args[0]); err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "saved %d tuples to %s\n", sh.rel.Len(), args[0])
	return nil
}

func (sh *shell) cmdLoad(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: load <file>")
	}
	rel, err := core.LoadRelationFile(args[0])
	if err != nil {
		return err
	}
	sh.rel = rel
	fmt.Fprintf(sh.out, "loaded %s relation with %d tuples\n", rel.Kind(), rel.Len())
	return nil
}

func (sh *shell) printMatches(ms []core.Match) {
	fmt.Fprintf(sh.out, "%d answers\n", len(ms))
	for i, m := range ms {
		if i == 20 {
			fmt.Fprintf(sh.out, "... %d more\n", len(ms)-20)
			break
		}
		fmt.Fprintf(sh.out, "  tid=%-8d prob=%.6f\n", m.TID, m.Prob)
	}
}

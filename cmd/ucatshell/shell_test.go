package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// run feeds a script to a fresh shell and returns the combined output.
// Command errors fail the test unless wantErr marks the line index.
func run(t *testing.T, lines []string, wantErr map[int]bool) string {
	t.Helper()
	var out bytes.Buffer
	sh := &shell{out: &out}
	for i, line := range lines {
		err := sh.execute(line)
		if err == io.EOF {
			break
		}
		if wantErr[i] {
			if err == nil {
				t.Fatalf("line %d (%q): expected error", i, line)
			}
			continue
		}
		if err != nil {
			t.Fatalf("line %d (%q): %v", i, line, err)
		}
	}
	return out.String()
}

func TestShellBasicSession(t *testing.T) {
	out := run(t, []string{
		"# a comment",
		"",
		"new pdr",
		"insert 0:0.5,1:0.5",
		"insert 0:0.9,2:0.1",
		"insert 3:1.0",
		"petq 0:1.0 0.4",
		"topk 0:1.0 2",
		"window 1:1.0 1 0.3",
		"dstq 0:0.5,1:0.5 0.5 L1",
		"estimate 0:1.0 0.4",
		"get 0",
		"stats",
		"io",
		"delete 2",
		"rebuild",
		"check",
		"quit",
		"petq 0:1.0 0.4", // never reached
	}, nil)
	for _, want := range []string{
		"new pdr-tree relation",
		"tid 0",
		"tid 2",
		"2 answers", // petq 0.4: tuples 0 (0.5) and 1 (0.9)
		"prob=0.900000",
		"estimated selectivity",
		"entropy",
		"tuples=3",
		"reads=",
		"deleted 2",
		"rebuilt",
		"integrity ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellErrors(t *testing.T) {
	run(t, []string{
		"petq 0:1.0 0.5",          // 0: no relation yet
		"new bogus",               // 1: bad kind
		"new inverted",            // 2
		"insert",                  // 3: missing arg
		"insert 0:x",              // 4: bad prob
		"petq 0:1.0 nope",         // 5: bad tau
		"get 99",                  // 6: missing tuple
		"frobnicate",              // 7: unknown command
		"load /no/such/file.ucat", // 8
	}, map[int]bool{0: true, 1: true, 3: true, 4: true, 5: true, 6: true, 7: true, 8: true})
}

func TestShellSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.ucat")
	out := run(t, []string{
		"new inverted",
		"insert 5:1.0",
		"save " + path,
		"new scan", // discard current
		"load " + path,
		"petq 5:1.0 0.5",
	}, nil)
	if !strings.Contains(out, "loaded inverted relation with 1 tuples") {
		t.Errorf("load output wrong:\n%s", out)
	}
	if !strings.Contains(out, "1 answers") {
		t.Errorf("query after load failed:\n%s", out)
	}
}

func TestShellHelpAndQuit(t *testing.T) {
	out := run(t, []string{"help", "exit"}, nil)
	if !strings.Contains(out, "commands:") || !strings.Contains(out, "petq") {
		t.Errorf("help output:\n%s", out)
	}
	if !strings.Contains(out, "explain") {
		t.Errorf("help does not mention explain:\n%s", out)
	}
}

func TestShellExplainInverted(t *testing.T) {
	out := run(t, []string{
		"new inverted",
		"insert 0:0.5,1:0.5",
		"insert 0:0.9,2:0.1",
		"insert 1:0.3,3:0.7",
		"explain petq 0:1.0 0.4",
	}, nil)
	for _, want := range []string{
		"trace:",
		"explain.petq", // root span
		"invidx.petq",  // index span nested under it
		"strategy=",    // strategy attribute
		"tau=0.4",      // query attribute
		"reads=",       // per-span I/O
		"pool: reads=", // pool totals line
		"hitrate=",     // Stats.String now reports hit rate
		"2 answers",    // tuples 0 (0.5) and 1 (0.9)
		"prob=0.900000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestShellExplainPDRAndDSTQ(t *testing.T) {
	out := run(t, []string{
		"new pdr",
		"insert 0:0.5,1:0.5",
		"insert 2:1.0",
		"explain topk 0:1.0 1",
		"explain window 1:1.0 1 0.3",
		"explain dstq 0:0.5,1:0.5 0.5 L1",
	}, nil)
	for _, want := range []string{
		"explain.topk",
		"pdrtree.topk",
		"k=1",
		"explain.window",
		"explain.dstq",
		"dist=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestShellExplainErrors(t *testing.T) {
	run(t, []string{
		"explain petq 0:1.0 0.4",  // 0: no relation yet
		"new inverted",            // 1
		"insert 0:1.0",            // 2
		"explain",                 // 3: missing subcommand
		"explain frobnicate",      // 4: unknown query
		"explain petq 0:1.0",      // 5: missing tau
		"explain petq 0:x 0.4",    // 6: bad UDA
		"explain petq 0:1.0 nope", // 7: bad tau
		"explain topk 0:1.0 zz",   // 8: bad k
		"explain window 0:1.0 1",  // 9: missing tau
		"explain dstq 0:1.0 0.5",  // 10: missing divergence
	}, map[int]bool{0: true, 3: true, 4: true, 5: true, 6: true, 7: true, 8: true, 9: true, 10: true})
}

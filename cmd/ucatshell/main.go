// Command ucatshell is an interactive shell over an uncertain relation:
// create or load a relation, insert uncertain tuples, and run the paper's
// probabilistic queries against it, watching the I/O each one costs.
//
//	$ ucatshell
//	> new pdr
//	> insert 0:0.5,1:0.5
//	tid 0
//	> petq 0:1.0 0.4
//	1 answers
//	  tid=0        prob=0.500000
//	> quit
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	timeout := flag.Duration("timeout", 0,
		"per-query deadline (0 = none); a query past it stops at the next page access")
	flag.Parse()
	sh := &shell{out: os.Stdout, timeout: *timeout}
	in := bufio.NewScanner(os.Stdin)
	interactive := isTerminal()
	if interactive {
		fmt.Println("ucat shell — 'help' lists commands")
	}
	for {
		if interactive {
			fmt.Print("> ")
		}
		if !in.Scan() {
			break
		}
		err := sh.execute(in.Text())
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ucatshell: %v\n", err)
		os.Exit(1)
	}
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

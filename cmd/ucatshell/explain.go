package main

import (
	"context"
	"fmt"
	"strconv"

	"ucat/internal/cliutil"
	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/pager"
	"ucat/internal/query"
	"ucat/internal/uda"
)

// cmdExplain runs a query under a fresh 100-frame instrumented pool view and
// prints the recorded span tree — per-node I/O, timing and hot-path counters
// — followed by the pool totals and the answers. The per-span reads sum to
// exactly the pool's read counter, so EXPLAIN doubles as an I/O-accounting
// audit of the paper's cost model (§4).
func (sh *shell) cmdExplain(args []string) error {
	if err := sh.need(); err != nil {
		return err
	}
	if len(args) < 1 {
		return fmt.Errorf("usage: explain <petq|topk|window|dstq> <args...>")
	}
	// Dirty construction-pool pages must reach the store before a second view
	// reads it, or the fresh pool would see stale bytes.
	if err := sh.rel.Pool().FlushAll(); err != nil {
		return err
	}
	view := pager.NewPool(sh.rel.Pool().Store(), pager.DefaultPoolFrames)
	rec := obs.NewRecorder()
	rd := sh.rel.Reader(obs.InstrumentView(view, rec))
	if sh.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), sh.timeout)
		defer cancel()
		rd = rd.WithContext(ctx)
	}

	sub, rest := args[0], args[1:]
	var ms []core.Match
	var ns []core.Neighbor
	var err error
	switch sub {
	case "petq":
		if len(rest) != 2 {
			return fmt.Errorf("usage: explain petq <item:prob,...> <tau>")
		}
		var q uda.UDA
		var tau float64
		if q, err = cliutil.ParseUDA(rest[0]); err != nil {
			return err
		}
		if tau, err = strconv.ParseFloat(rest[1], 64); err != nil {
			return err
		}
		ms, err = explainQuery(rec, "explain.petq", func() ([]core.Match, error) {
			return rd.PETQ(q, tau)
		})
	case "topk":
		if len(rest) != 2 {
			return fmt.Errorf("usage: explain topk <item:prob,...> <k>")
		}
		var q uda.UDA
		var k int
		if q, err = cliutil.ParseUDA(rest[0]); err != nil {
			return err
		}
		if k, err = strconv.Atoi(rest[1]); err != nil {
			return err
		}
		ms, err = explainQuery(rec, "explain.topk", func() ([]core.Match, error) {
			return rd.TopK(q, k)
		})
	case "window":
		if len(rest) != 3 {
			return fmt.Errorf("usage: explain window <item:prob,...> <c> <tau>")
		}
		var q uda.UDA
		var c uint64
		var tau float64
		if q, err = cliutil.ParseUDA(rest[0]); err != nil {
			return err
		}
		if c, err = strconv.ParseUint(rest[1], 10, 32); err != nil {
			return err
		}
		if tau, err = strconv.ParseFloat(rest[2], 64); err != nil {
			return err
		}
		ms, err = explainQuery(rec, "explain.window", func() ([]core.Match, error) {
			return rd.WindowPETQ(q, uint32(c), tau)
		})
	case "dstq":
		if len(rest) != 3 {
			return fmt.Errorf("usage: explain dstq <item:prob,...> <td> <L1|L2|KL>")
		}
		var q uda.UDA
		var td float64
		var div uda.Divergence
		if q, err = cliutil.ParseUDA(rest[0]); err != nil {
			return err
		}
		if td, err = strconv.ParseFloat(rest[1], 64); err != nil {
			return err
		}
		if div, err = cliutil.ParseDivergence(rest[2]); err != nil {
			return err
		}
		ns, err = explainQuery(rec, "explain.dstq", func() ([]query.Neighbor, error) {
			return rd.DSTQ(q, td, div)
		})
	default:
		return fmt.Errorf("explain: unknown query %q (petq|topk|window|dstq)", sub)
	}
	if err != nil {
		return err
	}

	fmt.Fprintln(sh.out, "trace:")
	if err := rec.WriteTree(sh.out); err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "pool: %s\n", view.Stats())
	if sub == "dstq" {
		fmt.Fprintf(sh.out, "%d answers\n", len(ns))
		for i, n := range ns {
			if i == 20 {
				fmt.Fprintf(sh.out, "... %d more\n", len(ns)-20)
				break
			}
			fmt.Fprintf(sh.out, "  tid=%-8d dist=%.6f\n", n.TID, n.Dist)
		}
		return nil
	}
	sh.printMatches(ms)
	return nil
}

// explainQuery wraps a query execution in a root span so every page fetch —
// including any outside the index's own spans — is attributed to the tree.
func explainQuery[T any](rec *obs.Recorder, name string, run func() ([]T, error)) ([]T, error) {
	sp := rec.StartSpan(name)
	defer sp.End()
	return run()
}

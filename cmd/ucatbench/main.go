// Command ucatbench regenerates the paper's evaluation figures (and this
// repository's extra ablations) as text tables of disk I/Os per query.
//
// Usage:
//
//	ucatbench                      # all figures at full paper scale
//	ucatbench -fig fig5,fig10      # selected figures
//	ucatbench -ablations           # the ablation suite
//	ucatbench -scale 0.1 -queries 10 -seed 42
//
// Full scale builds 100k-tuple CRM datasets; use -scale to iterate quickly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"ucat/internal/exp"
	"ucat/internal/invidx"
)

func main() {
	var (
		figs      = flag.String("fig", "all", "comma-separated figure ids (fig4..fig10) or 'all'")
		ablations = flag.Bool("ablations", false, "run the ablation suite instead of the paper figures")
		scale     = flag.Float64("scale", 1.0, "dataset size multiplier (1.0 = paper scale)")
		queries   = flag.Int("queries", 20, "queries averaged per data point")
		seed      = flag.Int64("seed", 1, "PRNG seed")
		strategy  = flag.String("strategy", "", "inverted-index strategy override (e.g. nra, inv-index-search)")
		format    = flag.String("format", "table", "output format: table | csv")
		parallel  = flag.Bool("parallel", false, "run the selected figures concurrently (order preserved in output)")
	)
	flag.Parse()

	params := exp.Params{Scale: *scale, Queries: *queries, Seed: *seed}
	if *strategy != "" {
		found := false
		for _, s := range invidx.Strategies {
			if s.String() == *strategy {
				s := s
				params.InvStrategy = &s
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "ucatbench: unknown strategy %q\n", *strategy)
			os.Exit(1)
		}
	}
	runners := exp.Figures
	if *ablations {
		runners = exp.Ablations
	}

	want := map[string]bool{}
	if *figs != "all" {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	var selected []exp.Runner
	for _, r := range runners {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		selected = append(selected, r)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "ucatbench: no figure matched %q\n", *figs)
		os.Exit(1)
	}

	results := make([]*exp.Figure, len(selected))
	errs := make([]error, len(selected))
	run := func(i int) {
		start := time.Now()
		results[i], errs[i] = selected[i].Run(params)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", selected[i].ID, time.Since(start).Round(time.Millisecond))
	}
	if *parallel {
		var wg sync.WaitGroup
		for i := range selected {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range selected {
			run(i)
		}
	}
	for i, fig := range results {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "ucatbench: %s: %v\n", selected[i].ID, errs[i])
			os.Exit(1)
		}
		var werr error
		switch *format {
		case "csv":
			werr = fig.WriteCSV(os.Stdout)
		default:
			werr = fig.WriteTable(os.Stdout)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ucatbench: %v\n", werr)
			os.Exit(1)
		}
	}
}

// Command ucatbench regenerates the paper's evaluation figures (and this
// repository's extra ablations) as text tables of disk I/Os per query.
//
// Usage:
//
//	ucatbench                      # all figures at full paper scale
//	ucatbench -fig fig5,fig10      # selected figures
//	ucatbench -ablations           # the ablation suite
//	ucatbench -scale 0.1 -queries 10 -seed 42
//	ucatbench -workers 4           # per-point queries on 4 goroutines
//	ucatbench -benchparallel BENCH_parallel.json
//	ucatbench -benchpool BENCH_pool.json
//
// Full scale builds 100k-tuple CRM datasets; use -scale to iterate quickly.
//
// -workers fans each data point's calibrated queries out to N goroutines,
// each query against its own fresh 100-frame pool view (the paper's
// per-query buffer discipline), so the I/O numbers are bit-for-bit identical
// to the sequential run. The default comes from UCAT_BENCH_WORKERS (else 1);
// -workers 0 means GOMAXPROCS.
//
// -benchparallel times full figure regeneration sequentially (workers=1) and
// in parallel (-workers), verifies the two runs' I/O series are identical,
// and appends the wall-clock trajectory to the given JSON file.
//
// -benchpool measures the serving layer's ONE shared striped buffer pool
// (DESIGN.md §18) on a zipf-ish PETQ mix: eviction policy (clock/lru/gdsf)
// x stripe count x total frames, against the pre-refactor per-worker
// private pools at equal total memory, cross-checking that every variant's
// answers are bit-identical to direct execution.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"ucat/internal/exp"
	"ucat/internal/invidx"
	"ucat/internal/obs"
)

// benchFigure is one figure's sequential-vs-parallel wall-clock record.
type benchFigure struct {
	ID           string  `json:"id"`
	SequentialNs int64   `json:"sequential_ns"`
	ParallelNs   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
	IOsIdentical bool    `json:"ios_identical"`
}

// benchReport is the BENCH_parallel.json payload.
type benchReport struct {
	Generated         string        `json:"generated"`
	Workers           int           `json:"workers"`
	NumCPU            int           `json:"num_cpu"`
	GOMAXPROCS        int           `json:"gomaxprocs"`
	Scale             float64       `json:"scale"`
	Queries           int           `json:"queries"`
	Seed              int64         `json:"seed"`
	Figures           []benchFigure `json:"figures"`
	TotalSequentialNs int64         `json:"total_sequential_ns"`
	TotalParallelNs   int64         `json:"total_parallel_ns"`
	Speedup           float64       `json:"speedup"`
}

func defaultWorkers() int {
	if s := os.Getenv("UCAT_BENCH_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
		fmt.Fprintf(os.Stderr, "ucatbench: ignoring malformed UCAT_BENCH_WORKERS=%q\n", s)
	}
	return 1
}

func main() {
	var (
		figs       = flag.String("fig", "all", "comma-separated figure ids (fig4..fig10) or 'all'")
		ablations  = flag.Bool("ablations", false, "run the ablation suite instead of the paper figures")
		scale      = flag.Float64("scale", 1.0, "dataset size multiplier (1.0 = paper scale)")
		queries    = flag.Int("queries", 20, "queries averaged per data point")
		seed       = flag.Int64("seed", 1, "PRNG seed")
		strategy   = flag.String("strategy", "", "inverted-index strategy override (e.g. nra, inv-index-search)")
		format     = flag.String("format", "table", "output format: table | csv | json")
		parallel   = flag.Bool("parallel", false, "run the selected figures concurrently (order preserved in output)")
		workers    = flag.Int("workers", defaultWorkers(), "goroutines per data point's query batch; 0 = GOMAXPROCS (default from UCAT_BENCH_WORKERS)")
		benchPar   = flag.String("benchparallel", "", "time sequential vs parallel figure regeneration and write the trajectory to this JSON file")
		decCache   = flag.Bool("decodecache", true, "enable the relation-wide decoded-page cache (never changes I/O counts; off is for A/B measurement)")
		readahead  = flag.Bool("readahead", false, "enable sibling-leaf prefetch on inverted-list scans (prefetch reads are counted outside the I/O metric)")
		benchCache = flag.String("benchcache", "", "measure the fig4 PETQ workload cache-off vs cache-on (ns/q, allocs/q, hit rate, seq vs parallel) and write the report to this JSON file")
		benchPool  = flag.String("benchpool", "", "sweep the shared serving pool (eviction policy x stripes x frames vs per-worker private pools at equal total memory) and write the report to this JSON file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		debugAddr  = flag.String("debugaddr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running (e.g. localhost:6060)")
		metricsOut = flag.String("metricsout", "", "write the metrics registry in text format to this file on exit (self-validated)")
	)
	flag.Parse()

	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucatbench: debugaddr: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = ds.Close() }()
		fmt.Fprintf(os.Stderr, "[debug server on http://%s — /metrics /debug/vars /debug/pprof]\n", ds.Addr)
	}

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucatbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ucatbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	params := exp.Params{Scale: *scale, Queries: *queries, Seed: *seed, Workers: *workers,
		NoDecodeCache: !*decCache, Readahead: *readahead}
	if *strategy != "" {
		found := false
		for _, s := range invidx.Strategies {
			if s.String() == *strategy {
				s := s
				params.InvStrategy = &s
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "ucatbench: unknown strategy %q\n", *strategy)
			os.Exit(1)
		}
	}
	runners := exp.Figures
	if *ablations {
		runners = exp.Ablations
	}

	want := map[string]bool{}
	if *figs != "all" {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	var selected []exp.Runner
	for _, r := range runners {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		selected = append(selected, r)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "ucatbench: no figure matched %q\n", *figs)
		os.Exit(1)
	}

	if *benchCache != "" {
		if err := runBenchCache(params, *benchCache); err != nil {
			fmt.Fprintf(os.Stderr, "ucatbench: benchcache: %v\n", err)
			os.Exit(1)
		}
		writeMetricsOut(*metricsOut)
		writeMemProfile(*memprofile)
		return
	}

	if *benchPool != "" {
		if err := runBenchPool(params, *benchPool); err != nil {
			fmt.Fprintf(os.Stderr, "ucatbench: benchpool: %v\n", err)
			os.Exit(1)
		}
		writeMetricsOut(*metricsOut)
		writeMemProfile(*memprofile)
		return
	}

	if *benchPar != "" {
		if err := runBenchParallel(selected, params, *benchPar); err != nil {
			fmt.Fprintf(os.Stderr, "ucatbench: benchparallel: %v\n", err)
			os.Exit(1)
		}
		writeMetricsOut(*metricsOut)
		writeMemProfile(*memprofile)
		return
	}

	results := make([]*exp.Figure, len(selected))
	errs := make([]error, len(selected))
	run := func(i int) {
		start := time.Now()
		results[i], errs[i] = selected[i].Run(params)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", selected[i].ID, time.Since(start).Round(time.Millisecond))
	}
	if *parallel {
		var wg sync.WaitGroup
		for i := range selected {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range selected {
			run(i)
		}
	}
	for i, fig := range results {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "ucatbench: %s: %v\n", selected[i].ID, errs[i])
			os.Exit(1)
		}
		var werr error
		switch *format {
		case "csv":
			werr = fig.WriteCSV(os.Stdout)
		case "json":
			werr = fig.WriteJSON(os.Stdout)
		default:
			werr = fig.WriteTable(os.Stdout)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ucatbench: %v\n", werr)
			os.Exit(1)
		}
	}
	writeMetricsOut(*metricsOut)
	writeMemProfile(*memprofile)
}

// writeMetricsOut dumps the process-wide metrics registry in text format and
// re-parses the result, so a malformed exposition line fails the run (the CI
// `make metrics` check relies on this).
func writeMetricsOut(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucatbench: metricsout: %v\n", err)
		os.Exit(1)
	}
	if err := obs.Default.WriteText(f); err != nil {
		fmt.Fprintf(os.Stderr, "ucatbench: metricsout: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ucatbench: metricsout: %v\n", err)
		os.Exit(1)
	}
	g, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucatbench: metricsout: %v\n", err)
		os.Exit(1)
	}
	defer func() { _ = g.Close() }()
	n, err := obs.ParseText(g)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucatbench: metricsout: invalid exposition: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[metrics: %d samples → %s]\n", n, path)
}

// runBenchParallel regenerates every selected figure twice — workers=1 and
// workers=params.Workers — verifies the I/O series match exactly, and writes
// the wall-clock trajectory to path.
func runBenchParallel(selected []exp.Runner, params exp.Params, path string) error {
	report := benchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Workers:    params.Workers,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      params.Scale,
		Queries:    params.Queries,
		Seed:       params.Seed,
	}
	seq := params
	seq.Workers = 1
	for _, r := range selected {
		t0 := time.Now()
		figSeq, err := r.Run(seq)
		if err != nil {
			return fmt.Errorf("%s sequential: %w", r.ID, err)
		}
		seqNs := time.Since(t0).Nanoseconds()

		t1 := time.Now()
		figPar, err := r.Run(params)
		if err != nil {
			return fmt.Errorf("%s parallel: %w", r.ID, err)
		}
		parNs := time.Since(t1).Nanoseconds()

		bf := benchFigure{
			ID:           r.ID,
			SequentialNs: seqNs,
			ParallelNs:   parNs,
			Speedup:      float64(seqNs) / float64(parNs),
			IOsIdentical: sameIOs(figSeq, figPar),
		}
		if !bf.IOsIdentical {
			fmt.Fprintf(os.Stderr, "ucatbench: WARNING: %s parallel I/O series differ from sequential\n", r.ID)
		}
		report.Figures = append(report.Figures, bf)
		report.TotalSequentialNs += seqNs
		report.TotalParallelNs += parNs
		fmt.Fprintf(os.Stderr, "[%s seq %v | par(%d) %v | ×%.2f]\n", r.ID,
			time.Duration(seqNs).Round(time.Millisecond), params.Workers,
			time.Duration(parNs).Round(time.Millisecond), bf.Speedup)
	}
	report.Speedup = float64(report.TotalSequentialNs) / float64(report.TotalParallelNs)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[total seq %v | par %v | ×%.2f on %d CPU(s) → %s]\n",
		time.Duration(report.TotalSequentialNs).Round(time.Millisecond),
		time.Duration(report.TotalParallelNs).Round(time.Millisecond),
		report.Speedup, report.NumCPU, path)
	return nil
}

// runBenchCache measures the decoded-page cache on the Figure-4 PETQ
// workload and writes BENCH_cache.json. See exp.BenchCache.
func runBenchCache(params exp.Params, path string) error {
	report, err := exp.BenchCache(params)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		_ = f.Close() // the write error takes precedence over the close error
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, a := range report.Access {
		// Printed as the signed change from cache-off to cache-on:
		// negative = cache-on is cheaper.
		fmt.Fprintf(os.Stderr, "[%s: allocs/q %+.1f%% | ns/q %+.1f%% | ios identical %v]\n",
			a.Label, -a.AllocsReductionPct, -a.NsReductionPct, a.IOsIdentical)
		for _, v := range a.Variants {
			fmt.Fprintf(os.Stderr, "  %-14s %10.0f ns/q %10.0f allocs/q %8.1f ios/q  hit %.3f\n",
				v.Label, v.NsPerQuery, v.AllocsPerQuery, v.IOsPerQuery, v.CacheHitRate)
		}
	}
	fmt.Fprintf(os.Stderr, "[benchcache → %s]\n", path)
	return nil
}

// sameIOs reports whether two figures carry exactly the same I/O series —
// same labels, same x values, bitwise-equal I/O means.
func sameIOs(a, b *exp.Figure) bool {
	if len(a.Series) != len(b.Series) {
		return false
	}
	for i := range a.Series {
		sa, sb := a.Series[i], b.Series[i]
		if sa.Label != sb.Label || len(sa.Points) != len(sb.Points) {
			return false
		}
		for j := range sa.Points {
			//ucatlint:ignore floatcmp exact cross-run determinism is the property under test
			if sa.Points[j].X != sb.Points[j].X || sa.Points[j].IOs != sb.Points[j].IOs {
				return false
			}
		}
	}
	return true
}

// writeMemProfile dumps a heap profile if a path was requested.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucatbench: memprofile: %v\n", err)
		os.Exit(1)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "ucatbench: memprofile: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ucatbench: memprofile: %v\n", err)
		os.Exit(1)
	}
}

// runBenchPool runs the shared-pool sweep and writes BENCH_pool.json,
// echoing a human-readable summary (hit rate is the headline on a
// single-CPU host; wall-clock is recorded but contended).
func runBenchPool(params exp.Params, path string) error {
	report, err := exp.BenchPool(params)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		_ = f.Close() // the write error takes precedence over the close error
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, b := range report.Baselines {
		fmt.Fprintf(os.Stderr, "[baseline private x%d @ %3d frames/worker: hit %.3f  reads %d  mismatches %d]\n",
			b.Workers, b.FramesPerWorker, b.HitRate, b.Reads, b.Mismatches)
	}
	for _, v := range report.Variants {
		fmt.Fprintf(os.Stderr, "  %-5s stripes=%d frames=%-4d hit %.3f  reads %6d  evictions %6d  mismatches %d\n",
			v.Policy, v.Stripes, v.Frames, v.HitRate, v.Reads, v.Evictions, v.Mismatches)
	}
	fmt.Fprintf(os.Stderr, "[answers identical across all runs: %v]\n", report.AllAnswersIdentical)
	fmt.Fprintf(os.Stderr, "[benchpool → %s]\n", path)
	return nil
}

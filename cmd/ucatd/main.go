// Command ucatd serves a persisted uncertain relation over HTTP: the paper's
// probabilistic queries (PETQ, top-k, window equality, DSTQ, nearest
// neighbor) as a JSON API with admission control, per-request deadlines,
// optional PETQ micro-batching and graceful drain.
//
//	$ ucatgen -n 50000 -index pdr -save rel.ucat
//	$ ucatd -load rel.ucat -addr :8080
//	$ curl -s localhost:8080/v1/query -d '{"kind":"petq","query":"3:0.6,9:0.4","tau":0.3}'
//
// OPERATIONS.md is the operator's manual: every flag, every endpoint, and
// how to read the numbers the server exposes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ucat/internal/core"
	"ucat/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ucatd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		load        = flag.String("load", "", "relation snapshot to serve (required; see ucatgen -save)")
		addr        = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		addrFile    = flag.String("addrfile", "", "write the actual listen address to this file once ready (readiness signal for scripts)")
		workers     = flag.Int("workers", 0, "query worker goroutines, all sharing one buffer pool (0 = GOMAXPROCS)")
		frames      = flag.Int("frames", 0, "TOTAL shared buffer-pool frames across all workers — per-worker before the shared-pool refactor, see OPERATIONS.md §8 (0 = workers × 100)")
		stripes     = flag.Int("stripes", 0, "shared-pool lock stripes (0 = 2 × workers, capped at 16)")
		policy      = flag.String("policy", "", "shared-pool eviction policy: clock | lru | gdsf (default clock)")
		queue       = flag.Int("queue", 0, "admission queue depth; overflow answers 429 (0 = 64)")
		timeout     = flag.Duration("timeout", 0, "default per-query deadline when the request sets none (0 = 2s)")
		maxTimeout  = flag.Duration("maxtimeout", 0, "cap on client-requested deadlines (0 = 30s)")
		batchWindow = flag.Duration("batchwindow", 0, "PETQ micro-batching window; 0 disables batching")
		batchMax    = flag.Int("batchmax", 0, "max probes coalesced into one traversal (0 = 16)")
		retryAfter  = flag.Duration("retryafter", 0, "Retry-After hint on 429 responses (0 = 1s)")
		drain       = flag.Duration("drain", 15*time.Second, "grace period for in-flight queries on SIGTERM/SIGINT")
	)
	flag.Parse()
	if *load == "" {
		return errors.New("-load is required (create a snapshot with ucatgen -save)")
	}

	rel, err := core.LoadRelationFile(*load)
	if err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		Relation:       rel,
		Workers:        *workers,
		QueueDepth:     *queue,
		PoolFrames:     *frames,
		PoolStripes:    *stripes,
		PoolPolicy:     *policy,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		RetryAfter:     *retryAfter,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		// Written only after Listen succeeds, so a script that waits for this
		// file never races the socket.
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			_ = ln.Close()
			return fmt.Errorf("writing -addrfile: %w", err)
		}
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}

	fmt.Printf("ucatd: serving %s relation (%d tuples) on %s (pool: %s)\n",
		rel.Kind(), rel.Len(), ln.Addr(), srv.PoolDescription())

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately

	fmt.Printf("ucatd: draining (up to %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "ucatd: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		_ = httpSrv.Close()
	}
	fmt.Println("ucatd: stopped")
	return nil
}

// Command ucatd serves a persisted uncertain relation over HTTP: the paper's
// probabilistic queries (PETQ, top-k, window equality, DSTQ, nearest
// neighbor) with admission control, per-request deadlines, micro-batching of
// the batchable kinds (PETQ, top-k, window) and graceful drain. One listener
// speaks two protocols, negotiated per request by Content-Type: the JSON API
// below, and the binary ucatwire framing (application/x-ucatwire) whose
// response path runs allocation-free — see OPERATIONS.md's wire-protocol
// section and ucatquery -addr -proto binary for a ready-made client.
//
//	$ ucatgen -n 50000 -index pdr -save rel.ucat
//	$ ucatd -load rel.ucat -addr :8080
//	$ curl -s localhost:8080/v1/query -d '{"kind":"petq","query":"3:0.6,9:0.4","tau":0.3}'
//
// With -wal the server also accepts durable writes on POST /v1/ingest: every
// operation is logged with group commit before it is acknowledged, applied to
// the indexes online, and replayed after a crash (DURABILITY.md). -load then
// seeds the initial state only when the WAL directory has no checkpoint yet;
// on every later boot the directory itself is authoritative.
//
//	$ ucatd -load rel.ucat -wal /var/lib/ucat/wal -addr :8080
//	$ curl -s localhost:8080/v1/ingest -d '{"ops":[{"op":"insert","dist":"3:0.7,9:0.3"}]}'
//
// OPERATIONS.md is the operator's manual: every flag, every endpoint, and
// how to read the numbers the server exposes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/server"
	"ucat/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ucatd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		load        = flag.String("load", "", "relation snapshot to serve (required; see ucatgen -save)")
		addr        = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		addrFile    = flag.String("addrfile", "", "write the actual listen address to this file once ready (readiness signal for scripts)")
		workers     = flag.Int("workers", 0, "query worker goroutines, all sharing one buffer pool (0 = GOMAXPROCS)")
		frames      = flag.Int("frames", 0, "TOTAL shared buffer-pool frames across all workers — per-worker before the shared-pool refactor, see OPERATIONS.md §8 (0 = workers × 100)")
		stripes     = flag.Int("stripes", 0, "shared-pool lock stripes (0 = 2 × workers, capped at 16)")
		policy      = flag.String("policy", "", "shared-pool eviction policy: clock | lru | gdsf (default clock)")
		queue       = flag.Int("queue", 0, "admission queue depth; overflow answers 429 (0 = 64)")
		timeout     = flag.Duration("timeout", 0, "default per-query deadline when the request sets none (0 = 2s)")
		maxTimeout  = flag.Duration("maxtimeout", 0, "cap on client-requested deadlines (0 = 30s)")
		batchWindow = flag.Duration("batchwindow", 0, "micro-batching window for petq/topk/window probes; 0 disables batching")
		batchMax    = flag.Int("batchmax", 0, "max probes coalesced into one traversal (0 = 16)")
		retryAfter  = flag.Duration("retryafter", 0, "Retry-After hint on 429 responses (0 = 1s)")
		drain       = flag.Duration("drain", 15*time.Second, "grace period for in-flight queries on SIGTERM/SIGINT")
		logFormat   = flag.String("logformat", "text", "structured log encoding: text | json")
		logSample   = flag.Int("logsample", 16, "request log sampling: ordinary successes log 1-in-N (errors and slow requests always log; N<0 drops successes)")
		slowMS      = flag.Int("slowms", -1, "slow-query threshold in ms for keeping span trees: -1 = self-tuning per-kind trailing p99, 0 = keep every tree, N>0 = fixed cutoff")
		flightRecs  = flag.Int("flightrecords", 0, "flight-recorder main ring size, the last-N completed requests kept for /debug/requests (0 = 512)")
		walDir      = flag.String("wal", "", "WAL + checkpoint directory; enables POST /v1/ingest (empty = read-only serving)")
		fsyncMode   = flag.String("fsync", "group", "WAL durability discipline: group | always | never (never is for benchmarks only — acks before the disk)")
		groupCommit = flag.Duration("groupcommit", 0, "group-commit coalescing window (0 = 2ms; negative = no wait, racing coalescing only)")
		checkpoint  = flag.Int("checkpoint", 50000, "fold the write delta into a fresh base every N applied ops (0 disables automatic folds)")
		index       = flag.String("index", "pdr", "index kind when -wal starts empty with no -load: scan | inverted | pdr")
	)
	flag.Parse()
	if *load == "" && *walDir == "" {
		return errors.New("-load is required (create a snapshot with ucatgen -save), unless -wal names a live directory")
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("-logformat %q: want text or json", *logFormat)
	}
	logger := slog.New(handler)

	// -slowms is operator-facing (ms, -1 = auto); Config.SlowThreshold is the
	// recorder's rule (0 = auto, <0 = keep everything, >0 = fixed).
	var slowThreshold time.Duration
	switch {
	case *slowMS < 0:
		slowThreshold = 0
	case *slowMS == 0:
		slowThreshold = -1
	default:
		slowThreshold = time.Duration(*slowMS) * time.Millisecond
	}

	var (
		rel  *core.Relation
		live *core.Live
	)
	if *walDir != "" {
		mode, err := wal.ParseFsyncMode(*fsyncMode)
		if err != nil {
			return err
		}
		var kind core.Kind
		switch *index {
		case "scan":
			kind = core.ScanOnly
		case "inverted":
			kind = core.InvertedIndex
		case "pdr":
			kind = core.PDRTree
		default:
			return fmt.Errorf("unknown -index %q (want scan|inverted|pdr)", *index)
		}
		live, err = core.OpenLive(core.LiveOptions{
			Dir:             *walDir,
			WAL:             wal.Options{Fsync: mode, GroupWindow: *groupCommit},
			CheckpointEvery: *checkpoint,
			OriginPath:      *load,
			RelOptions:      &core.Options{Kind: kind},
		})
		if err != nil {
			return err
		}
		defer func() { _ = live.Close() }()
		rel = live.Base()
	} else {
		var err error
		rel, err = core.LoadRelationFile(*load)
		if err != nil {
			return err
		}
	}

	srv, err := server.New(server.Config{
		Relation:       rel,
		Live:           live,
		Workers:        *workers,
		QueueDepth:     *queue,
		PoolFrames:     *frames,
		PoolStripes:    *stripes,
		PoolPolicy:     *policy,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		RetryAfter:     *retryAfter,
		FlightRecords:  *flightRecs,
		SlowThreshold:  slowThreshold,
		Logger:         logger,
		LogSample:      *logSample,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		// Written only after Listen succeeds, so a script that waits for this
		// file never races the socket.
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			_ = ln.Close()
			return fmt.Errorf("writing -addrfile: %w", err)
		}
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}

	tuples, mode := rel.Len(), "read-only"
	if live != nil {
		tuples, mode = live.Len(), "live"
	}
	logger.Info("ucatd serving",
		"rev", obs.ShortRevision(),
		"go", obs.ReadBuild().GoVersion,
		"relation", rel.Kind().String(),
		"tuples", tuples,
		"mode", mode,
		"addr", ln.Addr().String(),
		"pool", srv.PoolDescription())

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process immediately

	logger.Info("ucatd draining", "grace", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Warn("ucatd drain incomplete", "error", err.Error())
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		_ = httpSrv.Close()
	}
	logger.Info("ucatd stopped")
	return nil
}

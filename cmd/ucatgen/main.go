// Command ucatgen generates the paper's datasets and prints summary
// statistics (and optionally sample tuples), for inspecting the workloads
// the benchmarks run on. With -save it also builds an indexed relation over
// the dataset and writes a snapshot that ucatd, ucatquery and ucatshell can
// load.
//
// Usage:
//
//	ucatgen -dataset crm1 -n 1000
//	ucatgen -dataset gen3 -domain 200 -n 5000 -sample 3
//	ucatgen -dataset uniform -n 20000 -index pdr -save rel.ucat
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ucat/internal/core"
	"ucat/internal/dataset"
)

func main() {
	var (
		name   = flag.String("dataset", "uniform", "uniform | pairwise | gen3 | crm1 | crm2")
		n      = flag.Int("n", 0, "tuple count (0 = the paper's size for the dataset)")
		domain = flag.Int("domain", 50, "domain size (gen3 only)")
		seed   = flag.Int64("seed", 1, "PRNG seed")
		sample = flag.Int("sample", 0, "print this many sample tuples")
		index  = flag.String("index", "pdr", "index for -save: scan | inverted | pdr")
		save   = flag.String("save", "", "build a relation over the dataset and write its snapshot here")
	)
	flag.Parse()

	d, err := generate(*name, *n, *domain, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucatgen: %v\n", err)
		os.Exit(1)
	}

	if *save != "" {
		if err := buildAndSave(d, *index, *save); err != nil {
			fmt.Fprintf(os.Stderr, "ucatgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("saved:          %s (%s index)\n", *save, *index)
	}

	var totalPairs int
	var minPairs, maxPairs = 1 << 30, 0
	var mass, entropy float64
	for _, u := range d.Tuples {
		l := u.Len()
		totalPairs += l
		if l < minPairs {
			minPairs = l
		}
		if l > maxPairs {
			maxPairs = l
		}
		mass += u.Mass()
		entropy += u.Entropy()
	}
	nT := len(d.Tuples)
	fmt.Printf("dataset:        %s\n", d.Name)
	fmt.Printf("tuples:         %d\n", nT)
	fmt.Printf("domain size:    %d\n", d.Domain)
	fmt.Printf("non-zero items: min %d  mean %.2f  max %d\n", minPairs, float64(totalPairs)/float64(nT), maxPairs)
	fmt.Printf("mean mass:      %.6f\n", mass/float64(nT))
	fmt.Printf("mean entropy:   %.3f bits\n", entropy/float64(nT))

	// Item usage histogram (top 10 items by frequency).
	freq := map[uint32]int{}
	for _, u := range d.Tuples {
		for _, p := range u.Pairs() {
			freq[p.Item]++
		}
	}
	type itemCount struct {
		item  uint32
		count int
	}
	var ics []itemCount
	for it, c := range freq {
		ics = append(ics, itemCount{it, c})
	}
	sort.Slice(ics, func(i, j int) bool {
		if ics[i].count != ics[j].count {
			return ics[i].count > ics[j].count
		}
		return ics[i].item < ics[j].item
	})
	fmt.Printf("distinct items: %d\n", len(ics))
	fmt.Printf("top items:     ")
	for i, ic := range ics {
		if i == 10 {
			break
		}
		fmt.Printf(" %d(%d)", ic.item, ic.count)
	}
	fmt.Println()

	for i := 0; i < *sample && i < nT; i++ {
		fmt.Printf("tuple %d: %v\n", i, d.Tuples[i])
	}
}

// buildAndSave loads the dataset into a fresh relation under the chosen
// index and writes its snapshot to path.
func buildAndSave(d *dataset.Dataset, index, path string) error {
	var kind core.Kind
	switch index {
	case "scan":
		kind = core.ScanOnly
	case "inverted":
		kind = core.InvertedIndex
	case "pdr":
		kind = core.PDRTree
	default:
		return fmt.Errorf("unknown index %q (want scan|inverted|pdr)", index)
	}
	rel, err := core.NewRelation(core.Options{Kind: kind, PoolFrames: 4096})
	if err != nil {
		return err
	}
	for _, u := range d.Tuples {
		if _, err := rel.Insert(u); err != nil {
			return err
		}
	}
	return rel.SaveFile(path)
}

func generate(name string, n, domain int, seed int64) (*dataset.Dataset, error) {
	switch name {
	case "uniform":
		if n == 0 {
			n = dataset.SyntheticSize
		}
		return dataset.Uniform(seed, n), nil
	case "pairwise":
		if n == 0 {
			n = dataset.SyntheticSize
		}
		return dataset.Pairwise(seed, n), nil
	case "gen3":
		if n == 0 {
			n = dataset.SyntheticSize
		}
		return dataset.Gen3(seed, n, domain), nil
	case "crm1":
		if n == 0 {
			n = dataset.CRMSize
		}
		return dataset.CRM1Like(seed, n), nil
	case "crm2":
		if n == 0 {
			n = dataset.CRMSize
		}
		return dataset.CRM2Like(seed, n), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

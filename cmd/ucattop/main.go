// Command ucattop is a live terminal dashboard for a running ucatd: it polls
// the server's /metrics.json and /debug/requests endpoints and renders the
// operational picture an operator triages from — per-kind throughput and
// latency quantiles, shared-pool hit rate, queue depth, flight-recorder
// counters, and the current slowest-request table with trace IDs that can be
// followed into /debug/requests/<id> and the pprof goroutine labels.
//
// Usage:
//
//	ucattop -addr localhost:8080               # refresh every 2s until ^C
//	ucattop -addr localhost:8080 -once         # render one frame and exit
//	ucattop -addr localhost:8080 -check \
//	        -require ucat_serve_flight         # validate /metrics and exit
//
// The dashboard is stdlib-only: plain ANSI escape sequences, no terminal
// library. -check mode is what scripts/flight_smoke.sh runs in CI: it fetches
// the text /metrics endpoint, machine-validates it with obs.ParseText, and
// fails unless every -require prefix matches at least one exported sample.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"ucat/internal/obs"
)

// queryKinds mirrors the server's closed kind set, in display order.
var queryKinds = []string{"petq", "topk", "window", "windowtopk", "dstq", "neighbor"}

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "ucatd address (host:port or http URL)")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
		slowN    = flag.Int("slow", 8, "rows in the slow-request table")
		check    = flag.Bool("check", false, "validate /metrics with obs.ParseText and exit")
		require  = flag.String("require", "", "comma-separated metric-name prefixes -check must find")
	)
	flag.Parse()
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	if *check {
		os.Exit(runCheck(base, *require))
	}

	var prev *sample
	prevAt := time.Now()
	for {
		cur, err := fetchSample(base)
		now := time.Now()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucattop: %v\n", err)
			if *once {
				os.Exit(1)
			}
		} else {
			slow := fetchSlow(base, *slowN)
			var frame bytes.Buffer
			render(&frame, base, cur, prev, now.Sub(prevAt), slow)
			if !*once {
				// Home the cursor and clear below, so a shrinking frame
				// leaves no stale lines.
				fmt.Print("\x1b[H\x1b[2J")
			}
			os.Stdout.Write(frame.Bytes())
			prev, prevAt = cur, now
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// runCheck fetches the text /metrics endpoint, validates it with
// obs.ParseText, and checks every required name prefix appears. It prints a
// one-line verdict and returns the process exit code.
func runCheck(base, require string) int {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucattop -check: %v\n", err)
		return 1
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucattop -check: reading /metrics: %v\n", err)
		return 1
	}
	n, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucattop -check: /metrics is not machine-readable: %v\n", err)
		return 1
	}
	var missing []string
	for _, prefix := range strings.Split(require, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix == "" {
			continue
		}
		found := false
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, prefix) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, prefix)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "ucattop -check: /metrics has %d samples but no %s family\n",
			n, strings.Join(missing, ", "))
		return 1
	}
	fmt.Printf("ucattop -check: /metrics ok, %d samples\n", n)
	return 0
}

// sample is one /metrics.json scrape (the obs.Registry JSON export shape).
type sample struct {
	Counters   map[string]uint64           `json:"counters"`
	Gauges     map[string]int64            `json:"gauges"`
	Histograms map[string]obs.HistSnapshot `json:"histograms"`
}

// fetchSample scrapes and decodes /metrics.json.
func fetchSample(base string) (*sample, error) {
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics.json: status %d", resp.StatusCode)
	}
	var s sample
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, fmt.Errorf("decoding /metrics.json: %v", err)
	}
	return &s, nil
}

// fetchSlow pulls the slowest-request table from /debug/requests. A server
// without records (or an older ucatd without the endpoint) yields an empty
// table, never an error — the dashboard stays useful degraded.
func fetchSlow(base string, n int) []obs.RequestRecord {
	resp, err := http.Get(fmt.Sprintf("%s/debug/requests?outcome=slow&limit=%d", base, n))
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			_ = resp.Body.Close()
		}
		return nil
	}
	defer func() { _ = resp.Body.Close() }()
	var recs []obs.RequestRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		return nil
	}
	return recs
}

// render writes one dashboard frame. prev is the previous scrape (nil on the
// first frame), dt the wall time between the two, for rate columns.
func render(w io.Writer, base string, cur, prev *sample, dt time.Duration, slow []obs.RequestRecord) {
	fmt.Fprintf(w, "ucattop — %s — %s\n\n", base, time.Now().Format("15:04:05"))

	// Headline totals with rates.
	fmt.Fprintf(w, "requests %s   completed %s   errors %d   timeouts %d   rejected %d   shed %d\n",
		withRate(cur, prev, dt, "ucat_serve_requests_total"),
		withRate(cur, prev, dt, "ucat_serve_completed_total"),
		cur.Counters["ucat_serve_errors_total"],
		cur.Counters["ucat_serve_timeouts_total"],
		cur.Counters["ucat_serve_rejected_total"],
		cur.Counters["ucat_serve_draining_rejects_total"])
	fmt.Fprintf(w, "inflight %d   queued %d   batch leaders/joined %d/%d\n",
		cur.Gauges["ucat_serve_inflight"],
		cur.Gauges["ucat_serve_queued"],
		cur.Counters["ucat_serve_batch_leaders_total"],
		cur.Counters["ucat_serve_batch_joined_total"])

	// Shared pool health.
	reads := cur.Counters["ucat_serve_sharedpool_reads_total"]
	hits := cur.Counters["ucat_serve_sharedpool_hits_total"]
	fmt.Fprintf(w, "pool occupancy %d/%d   pinned %d   reads %d   hits %d   hit rate %.1f%%\n\n",
		cur.Gauges["ucat_serve_sharedpool_occupancy"],
		cur.Gauges["ucat_serve_sharedpool_frames"],
		cur.Gauges["ucat_serve_sharedpool_pinned"],
		reads, hits, 100*rate(hits, hits+reads))

	// Per-kind latency table.
	fmt.Fprintf(w, "%-12s %10s %8s %10s %10s %12s\n", "kind", "count", "qps", "p50 ms", "p99 ms", "slow thr ms")
	for _, kind := range queryKinds {
		h, ok := cur.Histograms["ucat_serve_latency_ns_"+kind]
		if !ok || h.Count == 0 {
			continue
		}
		qps := 0.0
		if prev != nil && dt > 0 {
			if ph, ok := prev.Histograms["ucat_serve_latency_ns_"+kind]; ok {
				qps = float64(h.Count-ph.Count) / dt.Seconds()
			}
		}
		fmt.Fprintf(w, "%-12s %10d %8.1f %10.2f %10.2f %12s\n",
			kind, h.Count, qps, h.P50/1e6, h.P99/1e6,
			thresholdMS(cur, kind))
	}

	// Flight recorder counters.
	fmt.Fprintf(w, "\nflight: completed %d   slow %d   trees kept/dropped %d/%d   errors %d   records %d\n",
		cur.Counters["ucat_serve_flight_completed_total"],
		cur.Counters["ucat_serve_flight_slow_total"],
		cur.Counters["ucat_serve_flight_trees_kept_total"],
		cur.Counters["ucat_serve_flight_trees_dropped_total"],
		cur.Counters["ucat_serve_flight_errors_total"],
		cur.Gauges["ucat_serve_flight_records"])

	// Slowest requests, newest first (the /debug/requests order).
	if len(slow) > 0 {
		fmt.Fprintf(w, "\n%-8s %-12s %10s %10s %8s %8s %-8s %s\n",
			"trace", "kind", "ms", "queue ms", "reads", "hits", "batch", "outcome")
		for _, r := range slow {
			batch := r.Batch
			if batch == "" {
				batch = "-"
			}
			fmt.Fprintf(w, "%-8d %-12s %10.2f %10.2f %8d %8d %-8s %s\n",
				r.ID, r.Kind,
				float64(r.LatencyNS)/1e6, float64(r.QueueNS)/1e6,
				r.Reads, r.Hits, batch, r.Outcome)
		}
	}
}

// thresholdMS formats a kind's current tail-sampling threshold, "-" before
// the gauge exists (no request of that kind completed yet).
func thresholdMS(cur *sample, kind string) string {
	ns, ok := cur.Gauges["ucat_serve_flight_slow_threshold_ns_"+kind]
	if !ok {
		return "-"
	}
	if ns == 0 {
		return "all" // self-tuning warmup or keep-every-tree mode
	}
	return fmt.Sprintf("%.2f", float64(ns)/1e6)
}

// withRate renders "total (rate/s)" for a counter, total alone on the first
// frame.
func withRate(cur, prev *sample, dt time.Duration, name string) string {
	total := cur.Counters[name]
	if prev == nil || dt <= 0 {
		return fmt.Sprintf("%d", total)
	}
	return fmt.Sprintf("%d (%.1f/s)", total, float64(total-prev.Counters[name])/dt.Seconds())
}

// rate is a safe ratio.
func rate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
